#include "lod/streaming/player.hpp"

#include <algorithm>
#include <limits>

namespace lod::streaming {

using net::ByteReader;
using net::ByteWriter;
using proto::Ctl;

std::string to_string(SyncModel m) {
  switch (m) {
    case SyncModel::kOcpn: return "OCPN";
    case SyncModel::kXocpn: return "XOCPN";
    case SyncModel::kEtpn: return "ETPN";
  }
  return "?";
}

Player::Player(net::Transport& net, net::HostId host, PlayerConfig cfg,
               media::DrmSystem* drm)
    : net_(net),
      host_(host),
      cfg_(cfg),
      drm_(drm),
      ctl_(net, host, cfg.ctl_port),
      data_(net, host, cfg.data_port),
      web_(net, host, static_cast<net::Port>(cfg.data_port + 1)) {
  auto& reg = net_.obs().metrics();
  trace_ = &net_.obs().trace();
  const obs::Labels l{{"host", std::to_string(host_)}};
  m_packets_received_ = reg.counter("lod.player.packets_received", l);
  m_units_rendered_ = reg.counter("lod.player.units_rendered", l);
  m_units_lost_ = reg.counter("lod.player.units_lost", l);
  m_stalls_ = reg.counter("lod.player.stalls", l);
  m_slides_shown_ = reg.counter("lod.player.slides_shown", l);
  m_repairs_requested_ = reg.counter("lod.player.repairs_requested", l);
  m_failovers_ = reg.counter("lod.player.failovers", l);
  m_startup_us_ = reg.histogram("lod.player.startup_us", l);
  m_stall_us_ = reg.histogram("lod.player.stall_us", l);
  m_slide_fetch_us_ = reg.histogram("lod.player.slide_fetch_us", l);
  m_render_offset_us_ = reg.histogram("lod.player.render_offset_us", l);
  ctl_.on_receive(
      [this](const net::ReliableEndpoint::Message& m) { handle_control(m); });
  data_.on_receive([this](const net::Datagram& p) { handle_data(p); });
}

Player::~Player() {
  *alive_ = false;
  if (render_timer_) net_.cancel(*render_timer_);
  if (sync_timer_) net_.cancel(*sync_timer_);
  if (failover_timer_) net_.cancel(*failover_timer_);
  if (channel_ != 0) net_.release_channel(channel_);
}

net::SimTime Player::local_now() const { return net_.local_now(host_); }

void Player::enter_finished() {
  const bool was_finished = state_ == State::kFinished;
  state_ = State::kFinished;
  if (!was_finished && observer_) observer_->on_finished();
  if (!was_finished && cfg_.auto_stop_on_finish) send_session_stop();
  if (session_span_ != 0) {
    // Close the in-flight phase spans before the session root so the tree
    // nests cleanly even when the session ends mid-open or mid-failover.
    if (describe_span_ != 0) {
      trace_->end_span(session_ctx_, describe_span_, "player.describe", host_);
      describe_span_ = 0;
    }
    if (startup_span_ != 0) {
      trace_->end_span(session_ctx_, startup_span_, "player.startup", host_);
      startup_span_ = 0;
    }
    if (failover_span_ != 0) {
      trace_->end_span(session_ctx_, failover_span_, "player.failover", host_);
      failover_span_ = 0;
    }
    const obs::TraceContext root{session_ctx_.trace_id, 0};
    trace_->end_span(root, session_span_, "player.session", host_,
                     static_cast<std::int64_t>(failovers_));
    session_span_ = 0;
    session_ctx_ = {};
  }
  if (sync_timer_) {
    net_.cancel(*sync_timer_);
    sync_timer_.reset();
  }
  if (render_timer_) {
    net_.cancel(*render_timer_);
    render_timer_.reset();
  }
  if (failover_timer_) {
    net_.cancel(*failover_timer_);
    failover_timer_.reset();
  }
}

net::SimTime Player::true_deadline(net::SimTime local) const {
  return net_.clock(host_).true_time(local);
}

net::SimDuration Player::effective_preroll() const {
  return cfg_.preroll_override.us > 0 ? cfg_.preroll_override
                                      : header_.props.preroll;
}

// --- session setup ---------------------------------------------------------------

void Player::reset_session_state() {
  buffer_.clear();
  scripts_.clear();
  pending_slide_.reset();
  awaiting_display_.clear();
  session_ = 0;
  eos_received_ = false;
  expected_seq_reset_ = true;
  highest_index_ = -1;
  received_index_.clear();

  reorder_.clear();
  next_feed_ = -1;
  nack_attempts_.clear();
  repair_total_ = -1;
  eos_deferrals_ = 0;
  stream_epoch_ = 0;
  max_index_seen_ = -1;
  // Any in-flight migration handshake is obsolete the moment a reopen
  // starts; the token bump makes its eventual reply a no-op.
  migration_inflight_ = false;
  ++migration_token_;
  waiting_since_.reset();
  if (render_timer_) {
    net_.cancel(*render_timer_);
    render_timer_.reset();
  }
}

void Player::open_and_play(net::HostId server, std::string content,
                           net::SimDuration from) {
  selector_ = nullptr;
  begin_session_trace();
  open_to(server, std::move(content), from);
}

void Player::open_and_play_via(SiteSelector& sel, std::string content,
                               net::SimDuration from) {
  selector_ = &sel;
  begin_session_trace();
  open_to(sel.pick_site(), std::move(content), from);
}

void Player::begin_session_trace() {
  // One trace per user-facing open; a failover reopen stays in the same
  // trace so its spans land in the same tree. A restored (migrated /
  // replayed) session adopts the original identity instead of minting one.
  if (adopted_trace_) {
    adopted_trace_ = false;
    return;
  }
  const obs::TraceContext root = trace_->make_trace();
  session_span_ = trace_->begin_span(root, "player.session", host_);
  session_ctx_ = root.child(session_span_);
}

void Player::restore_session_trace(std::uint64_t trace_id,
                                   std::uint64_t root_span) {
  session_span_ = root_span;
  session_ctx_.trace_id = trace_id;
  session_ctx_.parent_span_id = root_span;
  adopted_trace_ = trace_id != 0;
}

void Player::open_to(net::HostId server, std::string content,
                     net::SimDuration from) {
  reset_session_state();
  server_ = server;
  content_ = std::move(content);
  live_ = false;
  state_ = State::kOpening;
  discard_below_ = from;  // render begins at the requested position

  describe_span_ = trace_->begin_span(session_ctx_, "player.describe", host_,
                                      static_cast<std::int64_t>(server_));
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Ctl::kDescribe));
  w.str(content_);
  // Causal context piggybacks at the tail; pre-span receivers simply stop
  // reading before it.
  w.u64(session_ctx_.trace_id);
  w.u64(describe_span_);
  describe_sent_ = net_.now();
  ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
  if (selector_) arm_failover_watchdog();
}

void Player::join_live(net::HostId server, std::string name) {
  // Route the join through the shared open path: a reused Player would
  // otherwise inherit the previous session's reorder/NACK/timer state, and
  // its spans would dangle with no session root. open_to sends the DESCRIBE
  // with the trace context piggybacked, exactly like a VOD open.
  selector_ = nullptr;
  begin_session_trace();
  open_to(server, std::move(name), net::SimDuration{-1});
  live_ = true;
}

void Player::on_described(std::span<const std::byte> header_bytes) {
  header_ = media::asf::parse_header(header_bytes);
  demux_ = std::make_unique<media::asf::Demuxer>(header_);

  // DRM: "mandatory for rendering" — acquire a license or render nothing.
  if (header_.drm.is_protected) {
    if (drm_) {
      license_ = drm_->issue_license(header_.drm.key_id, cfg_.user,
                                     net::SimTime::max());
    }
    if (license_) {
      demux_->set_license(drm_, *license_, cfg_.user);
    } else {
      drm_blocked_ = true;
    }
  }

  // XOCPN/ETPN: reserve a QoS channel sized to the content's bit-rate.
  if (cfg_.model != SyncModel::kOcpn && header_.props.avg_bitrate_bps > 0) {
    const auto rate = static_cast<std::int64_t>(
        static_cast<double>(header_.props.avg_bitrate_bps) *
        cfg_.channel_headroom);
    if (auto ch = net_.reserve_channel(server_, host_, rate)) channel_ = *ch;
  }

  // ETPN: synchronize the local clock against the server, now and periodically.
  if (cfg_.model == SyncModel::kEtpn) start_clock_sync_loop();

  if (live_) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kJoinLive));
    w.str(content_);
    w.u16(cfg_.data_port);
    ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
    play_issued_ = net_.now();
    if (trace_->enabled()) {
      trace_->emit(obs::EventType::kPlayIssued, host_, 0, 1, content_);
    }
    state_ = State::kBuffering;
  } else {
    const net::SimDuration from =
        discard_below_.us >= 0 ? discard_below_ : net::SimDuration{0};
    send_play(from);
  }
}

void Player::send_play(net::SimDuration from) {
  // The startup span opens at the same instant kPlayIssued stamps, so its
  // duration equals startup_delay() exactly.
  startup_span_ =
      trace_->begin_span(session_ctx_, "player.startup", host_, from.us);
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Ctl::kPlay));
  w.str(content_);
  w.i64(from.us);
  w.u16(cfg_.data_port);
  w.u32(channel_);
  w.u64(session_ctx_.trace_id);
  w.u64(startup_span_);
  ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
  play_issued_ = net_.now();
  if (trace_->enabled()) {
    trace_->emit_in(session_ctx_, obs::EventType::kPlayIssued, host_, from.us,
                    0, content_);
  }
  expected_seq_reset_ = true;
  eos_received_ = false;
  state_ = State::kBuffering;
}

void Player::send_session_stop() {
  if (session_ == 0) return;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(live_ ? Ctl::kLeaveLive : Ctl::kStop));
  w.u64(session_);
  ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
  session_ = 0;  // closed: later stop()/finish paths must not re-send
}

void Player::stop() {
  send_session_stop();
  enter_finished();
}

// --- failover watchdog (selector-driven sessions) -----------------------------------

void Player::arm_failover_watchdog() {
  if (failover_timer_) {
    net_.cancel(*failover_timer_);
    failover_timer_.reset();
  }
  if (!selector_ || cfg_.failover_timeout.us <= 0) return;
  watchdog_last_packets_ = packets_received_;
  watchdog_stuck_since_ = net_.now();
  failover_timer_ = net_.schedule_after(
      cfg_.failover_check_interval, [this, alive = alive_] {
        if (!*alive) return;
        failover_timer_.reset();
        watchdog_tick();
      });
}

void Player::watchdog_tick() {
  if (!selector_ || state_ == State::kFinished || state_ == State::kIdle) {
    return;
  }
  const net::SimTime now = net_.now();
  // Starvation = the site owes us data and none is arriving. A paused
  // session and smooth playback owe nothing.
  bool starved = false;
  if (state_ == State::kOpening || state_ == State::kBuffering) {
    starved = packets_received_ == watchdog_last_packets_;
  } else if (state_ == State::kPlaying && waiting_since_) {
    starved = packets_received_ == watchdog_last_packets_;
  }
  if (!starved) {
    watchdog_last_packets_ = packets_received_;
    watchdog_stuck_since_ = now;
  } else if (now - watchdog_stuck_since_ >= cfg_.failover_timeout) {
    do_failover();
    return;  // open_to re-armed the watchdog
  }
  failover_timer_ = net_.schedule_after(
      cfg_.failover_check_interval, [this, alive = alive_] {
        if (!*alive) return;
        failover_timer_.reset();
        watchdog_tick();
      });
}

void Player::do_failover() {
  ++failovers_;
  m_failovers_.inc();
  net_.obs().flight().record(obs::FlightType::kFailover,
                             static_cast<std::uint32_t>(host_), server_);
  if (failover_span_ == 0) {
    failover_span_ = trace_->begin_span(session_ctx_, "player.failover", host_,
                                        static_cast<std::int64_t>(server_));
  }
  // Resume where the viewer actually is, never before the pending open/seek
  // target: the render cursor in smooth playback, the last unit actually
  // shown while starved (position() keeps advancing through a stall and
  // would overshoot media that never rendered), the pause position while
  // paused. Resuming from the original `from` offset here used to replay
  // every already-rendered segment on a mid-playout failover.
  net::SimDuration resume_at =
      discard_below_.us >= 0 ? discard_below_ : net::SimDuration{0};
  if (state_ == State::kPlaying) {
    if (waiting_since_) {
      if (!rendered_.empty()) {
        // +1us past the last unit actually shown: discard_below_ is a
        // strict lower bound, so resuming AT the unit would show it twice.
        resume_at =
            std::max(resume_at, rendered_.back().pts + net::SimDuration{1});
      }
    } else {
      resume_at = std::max(resume_at, position());
    }
  } else if (state_ == State::kPaused) {
    resume_at = std::max(resume_at, paused_pos_);
  }
  // The QoS reservation follows the old path; drop it and let the reopen
  // reserve against the new site.
  if (channel_ != 0) {
    net_.release_channel(channel_);
    channel_ = 0;
  }
  // A watchdog firing while a migration RPC is still in flight means the
  // migration TARGET went quiet too: that is the site to mark down, and the
  // token bump turns the stale reply (if it ever lands) into a no-op.
  const net::HostId failed = migration_inflight_ ? migration_target_ : server_;
  migration_inflight_ = false;
  ++migration_token_;
  const net::HostId next = selector_->failover_from(failed);
  if (cfg_.migrate_on_failover && !live_ && demux_ &&
      state_ != State::kOpening) {
    start_migration(next, resume_at);
    return;
  }
  open_to(next, content_, resume_at);
}

void Player::start_migration(net::HostId next, net::SimDuration resume_at) {
  const std::uint64_t token = ++migration_token_;
  migration_inflight_ = true;
  migration_target_ = next;
  if (!m_migrations_) {
    // Bound lazily so migration-free runs publish no series at all.
    m_migrations_ = net_.obs().metrics().counter(
        "lod.player.migrations", {{"host", std::to_string(host_)}});
  }
  ByteWriter w;
  w.u32(proto::kMigrateMagic);
  w.u16(proto::kMigrateVersion);
  w.str(content_);
  w.u32(static_cast<std::uint32_t>(host_));
  w.u16(cfg_.ctl_port);
  w.u16(cfg_.data_port);
  const std::uint32_t resume_index =
      max_index_seen_ >= 0
          ? static_cast<std::uint32_t>(max_index_seen_ + 1)
          : std::numeric_limits<std::uint32_t>::max();
  w.u32(resume_index);
  w.i64(resume_at.us);
  w.u32(stream_epoch_);
  w.f64(rate_);
  w.u8(state_ == State::kPaused ? 1 : 0);
  w.u64(session_ctx_.trace_id);
  w.u64(failover_span_ != 0 ? failover_span_ : session_ctx_.parent_span_id);
  const std::vector<std::byte> image =
      image_provider_ ? image_provider_() : std::vector<std::byte>{};
  w.blob(image);

  // The sim transport does not refuse sends to unbound ports, so a replica
  // without the migrate RPC would hang the handshake forever without a
  // deadline. Keep it well inside the watchdog timeout: the fallback reopen
  // must fire before the watchdog declares this site dead too.
  net::RpcClient::CallOptions opts;
  opts.timeout = cfg_.failover_timeout.us > 0 ? cfg_.failover_timeout / 2
                                              : net::msec(1000);
  web_.call(
      next,
      static_cast<net::Port>(cfg_.server_port + proto::kMigratePortOffset),
      "/edge/migrate", std::move(w).take(),
      [this, alive = alive_, token, next,
       resume_at](net::Result<net::RpcReply> r) {
        if (!*alive || token != migration_token_) return;
        migration_inflight_ = false;
        if (!r || r->status != 200) {
          // The replica cannot adopt (cold meta, pre-migration build,
          // timeout): fall back to the re-describe reopen, which knows how
          // to park and warm up.
          open_to(next, content_, resume_at);
          return;
        }
        std::uint64_t sid = 0;
        std::uint32_t start = 0;
        try {
          ByteReader rr(r->body);
          sid = rr.u64();
          start = rr.u32();
        } catch (const std::exception&) {
          open_to(next, content_, resume_at);
          return;
        }
        complete_migration(next, sid, start);
      },
      opts);
  // Keep the watchdog running through the handshake; if the target answers
  // nothing at all the next failover marks IT down (see do_failover).
  arm_failover_watchdog();
}

void Player::complete_migration(net::HostId next, std::uint64_t session_id,
                                std::uint32_t start_index) {
  (void)start_index;  // informational: the replica's first packet index
  ++migrations_;
  m_migrations_.inc();
  if (state_ == State::kFinished || state_ == State::kIdle) {
    // Playback ended while the handshake was in flight: release the adopted
    // session instead of leaking it on the new replica.
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kStop));
    w.u64(session_id);
    ctl_.send_to(next, cfg_.server_port, std::move(w).take());
    return;
  }
  server_ = next;
  session_ = session_id;
  expected_seq_reset_ = true;  // the replica's transmission counter is fresh
  // The QoS reservation follows the new path.
  if (cfg_.model != SyncModel::kOcpn && header_.props.avg_bitrate_bps > 0) {
    const auto rate = static_cast<std::int64_t>(
        static_cast<double>(header_.props.avg_bitrate_bps) *
        cfg_.channel_headroom * rate_);
    if (auto ch = net_.reserve_channel(server_, host_, rate)) channel_ = *ch;
  }
  // ETPN: the clock discipline must track the new serving site.
  if (cfg_.model == SyncModel::kEtpn) {
    if (sync_timer_) {
      net_.cancel(*sync_timer_);
      sync_timer_.reset();
    }
    run_clock_sync();
  }
  // (The adopting edge emits the kSessionOpen event, exactly as it does on
  // the kPlay path — one open event per session per site.)
  // Rendering never stopped (the jitter buffer carried the handshake), so
  // the failover episode is over the moment the session is adopted.
  if (failover_span_ != 0 &&
      (state_ == State::kPlaying || state_ == State::kPaused)) {
    trace_->end_span(session_ctx_, failover_span_, "player.failover", host_,
                     static_cast<std::int64_t>(server_));
    failover_span_ = 0;
  }
  arm_failover_watchdog();
}

// --- clock synchronization (ETPN) ---------------------------------------------------

void Player::start_clock_sync_loop() {
  run_clock_sync();
}

void Player::run_clock_sync() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Ctl::kTimeSync));
  w.i64(local_now().us);
  ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
  if (cfg_.clock_sync_interval.us > 0) {
    sync_timer_ = net_.schedule_after(
        cfg_.clock_sync_interval, [this, alive = alive_] {
          if (!*alive) return;
          sync_timer_.reset();
          run_clock_sync();
        });
  }
}

// --- control plane ---------------------------------------------------------------------

void Player::handle_control(const net::ReliableEndpoint::Message& m) {
  ByteReader r(m.payload);
  const Ctl tag = static_cast<Ctl>(r.u8());
  switch (tag) {
    case Ctl::kDescribeOk: {
      if (selector_) {
        // One-way delay estimate from the DESCRIBE round trip (true time:
        // both ends are this host's schedule, no clock skew involved).
        selector_->observe(server_,
                           (net_.now() - describe_sent_) / 2);
      }
      if (describe_span_ != 0) {
        trace_->end_span(session_ctx_, describe_span_, "player.describe",
                         host_, static_cast<std::int64_t>(server_));
        describe_span_ = 0;
      }
      const auto hb = r.blob();
      on_described(hb);
      return;
    }
    case Ctl::kPlayOk: {
      session_ = r.u64();
      return;
    }
    case Ctl::kTimeSyncReply: {
      // NTP two-timestamp estimate: offset = ts + rtt/2 - t2.
      const net::SimTime t1{r.i64()};
      const net::SimTime ts{r.i64()};
      const net::SimTime t2 = local_now();
      const net::SimDuration rtt = t2 - t1;
      const net::SimDuration offset = (ts - t2) + rtt / 2;
      net_.clock(host_).adjust(offset);
      last_correction_ = offset;
      if (selector_) selector_->observe(server_, rtt / 2);
      if (trace_->enabled()) {
        trace_->emit(obs::EventType::kClockSync, host_, offset.us, rtt.us);
      }
      return;
    }
    case Ctl::kEndOfStream: {
      (void)r.u64();  // session id (already known)
      repair_total_ = static_cast<std::int64_t>(r.u32());
      handle_eos();
      return;
    }
    case Ctl::kError:
    default:
      return;
  }
}

void Player::handle_eos() {
  if (cfg_.repair_losses && !live_ && repair_total_ > 0) {
    // Trailing losses leave no higher index to expose them: NACK everything
    // missing up to the file's end, and give the repairs a moment to land
    // before declaring the stream over.
    if (highest_index_ + 1 < repair_total_) {
      request_repair(static_cast<std::uint32_t>(highest_index_ + 1),
                     static_cast<std::uint32_t>(repair_total_));
      highest_index_ = repair_total_ - 1;
    }
    const bool holes_pending =
        !reorder_.empty() ||
        (next_feed_ >= 0 && next_feed_ < repair_total_);
    if (holes_pending && eos_deferrals_ < 5) {
      ++eos_deferrals_;
      if (!reorder_.empty()) arm_hole_timer();
      net_.schedule_after(net::msec(500),
                                      [this, alive = alive_] {
                                        if (!*alive) return;
                                        handle_eos();
                                      });
      return;
    }
    // Flush whatever is still held (holes included) before finishing.
    while (!reorder_.empty()) {
      auto it = reorder_.begin();
      net::Payload bytes = std::move(it->second);
      next_feed_ = static_cast<std::int64_t>(it->first) + 1;
      reorder_.erase(it);
      ingest_bytes(bytes);
    }
  }
  eos_received_ = true;
  if (state_ == State::kBuffering) maybe_start_rendering();
  if (state_ == State::kPlaying && buffer_.empty() && scripts_.empty()) {
    enter_finished();
  }
}

// --- data plane -------------------------------------------------------------------------

void Player::handle_data(const net::Datagram& p) {
  ByteReader r(p.payload);
  std::uint64_t seq = 0;
  std::uint32_t index = 0;
  net::Payload bytes;
  try {
    if (r.u32() != proto::kDataMagic) return;
    const std::uint64_t sess = r.u64();
    if (session_ != 0 && sess != session_) return;  // stale session's data
    const std::uint32_t epoch = r.u32();
    if (epoch != stream_epoch_) return;  // straggler from before a seek
    seq = r.u64();
    index = r.u32();
    // The packet bytes ride as a shared body attachment (or, from legacy
    // senders, as an inline blob the payload is sliced at). Either way a
    // zero-copy view; parsing waits until ingest.
    if (r.done()) {
      bytes = p.body;
    } else {
      const std::uint32_t n = r.u32();
      bytes = p.payload.slice(r.offset(), n);
    }
  } catch (const std::exception&) {
    return;  // malformed datagram: drop
  }
  ++packets_received_;
  m_packets_received_.inc();
  if (static_cast<std::int64_t>(index) > max_index_seen_) {
    max_index_seen_ = static_cast<std::int64_t>(index);
  }
  if (expected_seq_reset_) {
    expected_seq_reset_ = false;
    last_seq_ = seq;
  } else if (seq > last_seq_ + 1) {
    units_lost_ += seq - last_seq_ - 1;  // packet-level loss estimate
    m_units_lost_.inc(seq - last_seq_ - 1);
    net_.obs().flight().record(
        obs::FlightType::kFrameDrop, static_cast<std::uint32_t>(host_), seq,
        static_cast<std::uint64_t>(obs::DropCause::kUnitLost));
    last_seq_ = seq;
  } else if (seq > last_seq_) {
    last_seq_ = seq;
  }

  // Selective repair (extension): a repaired packet arrives out of order
  // with the same index — deduplicate, and NACK holes as they appear.
  if (cfg_.repair_losses && !live_) {
    if (!received_index_.insert(index).second) return;  // duplicate
    if (nack_attempts_.erase(index) > 0) ++repairs_received_;
    if (static_cast<std::int64_t>(index) > highest_index_ + 1 &&
        highest_index_ >= 0) {
      request_repair(static_cast<std::uint32_t>(highest_index_) + 1, index);
    }
    if (static_cast<std::int64_t>(index) > highest_index_) {
      highest_index_ = static_cast<std::int64_t>(index);
    }
  }

  if (!cfg_.repair_losses || live_) {
    ingest_bytes(bytes);
    return;
  }
  // Repair mode: hold out-of-order packets so the demuxer sees a contiguous
  // stream; give a NACKed hole a grace period before skipping it.
  if (next_feed_ < 0) next_feed_ = static_cast<std::int64_t>(index);
  if (static_cast<std::int64_t>(index) < next_feed_) return;  // stale
  reorder_.emplace(index, std::move(bytes));
  drain_reorder();
  if (!reorder_.empty()) arm_hole_timer();
}

void Player::request_repair(std::uint32_t first, std::uint32_t last) {
  constexpr std::uint8_t kMaxAttempts = 3;
  std::uint32_t count = 0;
  net::ByteWriter idxw;
  for (std::uint32_t miss = first; miss < last; ++miss) {
    if (received_index_.count(miss)) continue;
    auto& attempts = nack_attempts_[miss];
    if (attempts >= kMaxAttempts) continue;
    ++attempts;
    idxw.u32(miss);
    ++count;
    ++repairs_requested_;
  }
  if (count == 0) return;
  m_repairs_requested_.inc(count);
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kRepairRequest, host_, count);
  }
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Ctl::kRepair));
  w.u64(session_);
  w.u32(count);
  w.raw(idxw.bytes());
  ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
}

void Player::arm_hole_timer() {
  const std::uint32_t hole = static_cast<std::uint32_t>(next_feed_);
  net_.schedule_after(net::msec(400), [this, alive = alive_,
                                                   hole] {
    if (!*alive) return;
    if (next_feed_ != static_cast<std::int64_t>(hole) ||
        reorder_.count(hole)) {
      return;  // already filled or moved past
    }
    // Re-NACK while the attempt budget lasts; then give up and move on.
    auto it = nack_attempts_.find(hole);
    if (it == nack_attempts_.end() || it->second < 3) {
      request_repair(hole, hole + 1);
      if (!reorder_.empty()) arm_hole_timer();
      return;
    }
    next_feed_ = hole + 1;  // the repair never came; move on
    drain_reorder();
    if (!reorder_.empty()) arm_hole_timer();
  });
}

void Player::drain_reorder() {
  while (!reorder_.empty()) {
    auto it = reorder_.begin();
    if (static_cast<std::int64_t>(it->first) < next_feed_) {
      reorder_.erase(it);  // skipped hole got filled too late
      continue;
    }
    if (static_cast<std::int64_t>(it->first) != next_feed_) break;  // hole
    net::Payload bytes = std::move(it->second);
    reorder_.erase(it);
    ++next_feed_;
    ingest_bytes(bytes);
  }
}

void Player::ingest_bytes(const net::Payload& bytes) {
  media::asf::DataPacket pkt;
  try {
    pkt = media::asf::parse_packet(bytes);
  } catch (const std::exception&) {
    return;  // malformed packet body: drop
  }
  ingest(pkt);
}

void Player::ingest(const media::asf::DataPacket& pkt) {
  if (!demux_) return;
  demux_->feed(pkt, local_now());
  if (demux_->undecryptable()) drm_blocked_ = true;

  while (auto u = demux_->next_unit()) {
    if (discard_below_.us >= 0 && u->meta.pts < discard_below_) continue;
    if (drm_blocked_) continue;  // cannot render protected media
    buffer_.emplace(u->meta.pts.us, BufferedUnit{u->meta});
  }
  while (auto s = demux_->next_script()) {
    if (discard_below_.us >= 0 && s->at < discard_below_) {
      // Keep the latest skipped SLIDE so the right slide shows on arrival.
      if (s->type == "SLIDE") pending_slide_ = *s;
      continue;
    }
    if (cfg_.prefetch_slides && s->type == "SLIDE" &&
        !prefetched_.count(s->param)) {
      start_prefetch(s->param);
    }
    scripts_[s->at.us].push_back(std::move(*s));
  }

  if (state_ == State::kBuffering) {
    maybe_start_rendering();
  } else if (state_ == State::kPlaying && waiting_since_ && !buffer_.empty()) {
    // Stall recovery: rebase the render clock by how late we are.
    const net::SimDuration pts{buffer_.begin()->first};
    const net::SimTime deadline_true = unit_due(pts);
    const net::SimTime now_true = net_.now();
    if (now_true > deadline_true) {
      const net::SimDuration late = now_true - deadline_true;
      epoch_local_ += late;
      const StallEvent ev{*waiting_since_,
                          net_.now() - *waiting_since_};
      stalls_.push_back(ev);
      m_stalls_.inc();
      m_stall_us_.observe(ev.duration.us);
      if (trace_->enabled()) {
        trace_->emit_in(session_ctx_, obs::EventType::kStall, host_,
                        ev.duration.us);
      }
      if (observer_) observer_->on_stall(ev);
    }
    waiting_since_.reset();
    arm_render_timer();
  }
}

void Player::maybe_start_rendering() {
  if (buffer_.empty()) {
    if (eos_received_) {
      // Nothing buffered and nothing more coming: run any remaining script
      // commands (unless DRM blocked the session entirely) and finish.
      if (!drm_blocked_) {
        execute_scripts_upto(net::SimDuration{
            std::numeric_limits<std::int64_t>::max() / 2});
      }
      scripts_.clear();
      enter_finished();
    }
    return;
  }
  const net::SimDuration lo{buffer_.begin()->first};
  const net::SimDuration hi{buffer_.rbegin()->first};
  if (hi - lo < effective_preroll() && !eos_received_ && !live_) return;
  // Live joins start as soon as half a second is buffered.
  if (live_ && hi - lo < net::msec(500) && !eos_received_) return;

  base_pts_ = lo;
  if (cfg_.scheduled_start) {
    // Scheduled presentation: pts p renders at local instant start + p. A
    // synchronized clock makes that the MASTER instant; a skewed one shifts
    // the whole site by its offset — which is exactly what the distributed
    // benches measure.
    const net::SimTime target_local = *cfg_.scheduled_start + base_pts_;
    epoch_local_ = std::max(local_now(), target_local);
  } else {
    epoch_local_ = local_now();
  }
  state_ = State::kPlaying;
  render_start_pending_ = true;
  if (startup_delay_.us < 0) {
    startup_delay_ = net_.now() - play_issued_;
    m_startup_us_.observe(startup_delay_.us);
  }
  if (startup_span_ != 0) {
    trace_->end_span(session_ctx_, startup_span_, "player.startup", host_,
                     startup_delay_.us);
    startup_span_ = 0;
  }
  if (failover_span_ != 0) {
    trace_->end_span(session_ctx_, failover_span_, "player.failover", host_,
                     static_cast<std::int64_t>(server_));
    failover_span_ = 0;
  }
  if (pending_slide_) {
    // Apply the slide that should already be on screen at this position.
    auto cmd = *pending_slide_;
    pending_slide_.reset();
    cmd.at = base_pts_;
    scripts_[cmd.at.us].insert(scripts_[cmd.at.us].begin(), std::move(cmd));
  }
  waiting_since_.reset();
  arm_render_timer();
}

net::SimDuration Player::position() const {
  switch (state_) {
    case State::kPlaying: {
      const net::SimDuration wall = local_now() - epoch_local_;
      return base_pts_ + net::SimDuration{static_cast<std::int64_t>(
                             static_cast<double>(wall.us) * rate_)};
    }
    case State::kPaused:
      return paused_pos_;
    case State::kBuffering:
      return discard_below_.us >= 0 ? discard_below_ : base_pts_;
    case State::kFinished:
      return rendered_.empty() ? net::SimDuration{0} : rendered_.back().pts;
    default:
      return {};
  }
}

PlayerSyncCursor Player::sync_cursor() const {
  PlayerSyncCursor c;
  c.base_pts_us = base_pts_.us;
  c.epoch_local_us = epoch_local_.us;
  c.paused_pos_us = paused_pos_.us;
  c.rate = rate_;
  c.next_feed = next_feed_;
  c.highest_index = highest_index_;
  c.stream_epoch = stream_epoch_;
  return c;
}

void Player::restore_sync_cursor(const PlayerSyncCursor& c) {
  base_pts_ = net::SimDuration{c.base_pts_us};
  epoch_local_ = net::SimTime{c.epoch_local_us};
  paused_pos_ = net::SimDuration{c.paused_pos_us};
  if (c.rate > 0) rate_ = c.rate;
  next_feed_ = c.next_feed;
  highest_index_ = c.highest_index;
  stream_epoch_ = c.stream_epoch;
  if (state_ == State::kPlaying) {
    // The restored mapping may have jumped the playhead forward: catch up
    // through every script command now due, then reschedule rendering on
    // the restored timeline.
    execute_scripts_upto(position());
    arm_render_timer();
  }
}

// --- session snapshot (sync/migration surfaces) -------------------------------------

PlayerReorderSnapshot Player::reorder_snapshot() const {
  PlayerReorderSnapshot s;
  s.held.reserve(reorder_.size());
  for (const auto& [index, payload] : reorder_) {
    s.held.emplace_back(index, payload.to_vector());
  }
  s.next_feed = next_feed_;
  s.repair_total = repair_total_;
  s.eos_received = eos_received_;
  return s;
}

void Player::restore_reorder(const PlayerReorderSnapshot& s) {
  reorder_.clear();
  for (const auto& [index, bytes] : s.held) {
    reorder_.emplace(index, net::Payload(bytes));
  }
  next_feed_ = s.next_feed;
  repair_total_ = s.repair_total;
  eos_received_ = s.eos_received;
  // As if the held packets just arrived: feed whatever became contiguous and
  // put the head-of-line hole back on the clock.
  drain_reorder();
  if (!reorder_.empty()) arm_hole_timer();
}

PlayerRepairSnapshot Player::repair_snapshot() const {
  PlayerRepairSnapshot s;
  s.received.assign(received_index_.begin(), received_index_.end());
  std::sort(s.received.begin(), s.received.end());
  s.nacks.assign(nack_attempts_.begin(), nack_attempts_.end());
  std::sort(s.nacks.begin(), s.nacks.end());
  s.highest_index = highest_index_;
  s.max_index_seen = max_index_seen_;
  s.repairs_requested = repairs_requested_;
  s.repairs_received = repairs_received_;
  return s;
}

void Player::restore_repair(const PlayerRepairSnapshot& s) {
  received_index_.clear();
  received_index_.insert(s.received.begin(), s.received.end());
  nack_attempts_.clear();
  nack_attempts_.insert(s.nacks.begin(), s.nacks.end());
  highest_index_ = s.highest_index;
  max_index_seen_ = s.max_index_seen;
  repairs_requested_ = s.repairs_requested;
  repairs_received_ = s.repairs_received;
}

PlayerSlideCacheSnapshot Player::slide_cache_snapshot() const {
  PlayerSlideCacheSnapshot s;
  for (const auto& [url, done] : prefetched_) {
    if (done.has_value()) s.cached.push_back(url);
  }
  std::sort(s.cached.begin(), s.cached.end());
  return s;
}

void Player::restore_slide_cache(const PlayerSlideCacheSnapshot& s) {
  // Completion stamps do not migrate; what matters is "cached, appears
  // instantly" — stamp them as of now.
  const net::SimTime now = net_.now();
  for (const auto& url : s.cached) prefetched_[url] = now;
}

void Player::arm_render_timer() {
  if (render_timer_) {
    net_.cancel(*render_timer_);
    render_timer_.reset();
  }
  if (state_ != State::kPlaying) return;
  if (buffer_.empty()) {
    if (eos_received_) {
      execute_scripts_upto(net::SimDuration{
          std::numeric_limits<std::int64_t>::max() / 2});
      enter_finished();
    } else {
      waiting_since_ = net_.now();  // underrun: wait for data
    }
    return;
  }
  const net::SimDuration pts{buffer_.begin()->first};
  net::SimTime due = unit_due(pts);
  const net::SimTime now = net_.now();
  if (due < now) due = now;
  render_timer_ = net_.schedule_at(due, [this, alive = alive_] {
    if (!*alive) return;
    render_timer_.reset();
    render_due();
  });
}

net::SimTime Player::unit_due(net::SimDuration pts) const {
  // Deadline on the local clock, mapped back to simulator (true) time. The
  // renderer compares in TRUE time throughout so clock-rate rounding cannot
  // livelock the timer loop. Playback rate scales media time to wall time.
  const net::SimDuration media = pts - base_pts_;
  const net::SimDuration wall{static_cast<std::int64_t>(
      static_cast<double>(media.us) / rate_)};
  return true_deadline(epoch_local_ + wall);
}

void Player::render_due() {
  if (state_ != State::kPlaying) return;
  const net::SimTime now = net_.now();
  const net::SimTime now_local = local_now();

  while (!buffer_.empty() &&
         unit_due(net::SimDuration{buffer_.begin()->first}) <= now) {
    auto node = buffer_.extract(buffer_.begin());
    const auto& meta = node.mapped().meta;
    const RenderEvent ev{meta.type, meta.stream_id, meta.pts, now, now_local};
    rendered_.push_back(ev);
    m_units_rendered_.inc();
    m_render_offset_us_.observe(now.us - meta.pts.us);
    if (render_start_pending_) {
      render_start_pending_ = false;
      if (trace_->enabled()) {
        trace_->emit_in(session_ctx_, obs::EventType::kRenderStart, host_,
                        meta.pts.us, 0, content_);
      }
    }
    if (observer_) observer_->on_render(ev);
    note_render_for_interactions(now);
  }
  const net::SimDuration wall = now_local - epoch_local_;
  const net::SimDuration pos =
      base_pts_ + net::SimDuration{static_cast<std::int64_t>(
                      static_cast<double>(wall.us) * rate_)};
  execute_scripts_upto(pos);
  arm_render_timer();
}

void Player::start_prefetch(const std::string& url) {
  prefetched_[url] = std::nullopt;  // in flight
  web_.call(cfg_.web_server, cfg_.web_port, "/" + url, {},
            [this, alive = alive_, url](net::Result<net::RpcReply> r) {
              if (!*alive || !r || r->status != 200) return;
              const net::SimTime now = net_.now();
              prefetched_[url] = now;
              // If the flip time already passed, the slide appears the
              // instant its bytes land.
              if (auto it = awaiting_display_.find(url);
                  it != awaiting_display_.end()) {
                record_slide(SlideEvent{url, it->second.first, now,
                                        now - it->second.second});
                awaiting_display_.erase(it);
              }
            });
}

void Player::show_slide(const std::string& url, net::SimDuration at) {
  const net::SimTime now = net_.now();
  if (cfg_.prefetch_slides) {
    auto it = prefetched_.find(url);
    if (it != prefetched_.end() && it->second.has_value()) {
      // Already in the browser cache: appears instantly.
      record_slide(SlideEvent{url, at, now, net::SimDuration{0}});
      return;
    }
    if (it != prefetched_.end()) {
      // Fetch still in flight: display when it lands.
      awaiting_display_[url] = {at, now};
      return;
    }
    // Never prefetched (e.g. landed via pending_slide_): fall through.
  }
  web_.call(cfg_.web_server, cfg_.web_port, "/" + url, {},
            [this, alive = alive_, asked = now, at, url](
                net::Result<net::RpcReply> r) {
              if (!*alive || !r || r->status != 200) return;
              const net::SimTime done = net_.now();
              record_slide(SlideEvent{url, at, done, done - asked});
            });
}

void Player::record_slide(SlideEvent ev) {
  m_slides_shown_.inc();
  m_slide_fetch_us_.observe(ev.fetch_latency.us);
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSlideShow, host_, ev.pts.us,
                 ev.fetch_latency.us, ev.url);
  }
  slides_.push_back(std::move(ev));
  if (observer_) observer_->on_slide(slides_.back());
}

void Player::execute_scripts_upto(net::SimDuration pos) {
  while (!scripts_.empty() && net::SimDuration{scripts_.begin()->first} <= pos) {
    auto node = scripts_.extract(scripts_.begin());
    for (auto& cmd : node.mapped()) {
      if (cmd.type == "SLIDE") {
        show_slide(cmd.param, cmd.at);
      } else if (cmd.type == "ANNOT") {
        annotations_.push_back(
            AnnotationEvent{cmd.param, cmd.at, net_.now()});
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kAnnotation, host_, cmd.at.us, 0,
                       cmd.param);
        }
        if (observer_) observer_->on_annotation(annotations_.back());
      }
    }
  }
}

void Player::note_render_for_interactions(net::SimTime t) {
  for (auto& ir : interactions_) {
    if (!ir.satisfied) {
      ir.first_render_after = t;
      ir.satisfied = true;
    }
  }
}

// --- user interactions ---------------------------------------------------------------

void Player::pause() {
  if (state_ != State::kPlaying && state_ != State::kBuffering) return;
  paused_pos_ = position();
  interactions_.push_back(InteractionRecord{InteractionRecord::Kind::kPause,
                                            net_.now(),
                                            {},
                                            net::SimTime::max(),
                                            true});  // pause needs no resync
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSessionPause, host_,
                 static_cast<std::int64_t>(session_));
  }
  if (observer_) observer_->on_interaction(interactions_.back());
  if (render_timer_) {
    net_.cancel(*render_timer_);
    render_timer_.reset();
  }
  waiting_since_.reset();

  ByteWriter w;
  if (cfg_.model == SyncModel::kEtpn) {
    // The extended model pauses the schedule in place.
    w.u8(static_cast<std::uint8_t>(Ctl::kPause));
    w.u64(session_);
    ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
  } else {
    // OCPN/XOCPN have no pause transition: the only legal move is to tear
    // the pre-orchestrated playout down. Resume must restart from the top.
    w.u8(static_cast<std::uint8_t>(Ctl::kStop));
    w.u64(session_);
    ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
    session_ = 0;
    buffer_.clear();
    scripts_.clear();
    demux_ = std::make_unique<media::asf::Demuxer>(header_);
    if (license_) demux_->set_license(drm_, *license_, cfg_.user);
  }
  state_ = State::kPaused;
}

void Player::resume() {
  if (state_ != State::kPaused) return;
  interactions_.push_back(InteractionRecord{InteractionRecord::Kind::kResume,
                                            net_.now(),
                                            {},
                                            net::SimTime::max(),
                                            false});
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSessionResume, host_,
                 static_cast<std::int64_t>(session_));
  }
  if (observer_) observer_->on_interaction(interactions_.back());
  if (cfg_.model == SyncModel::kEtpn) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kResume));
    w.u64(session_);
    ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
    // Rebase the render clock and keep going with whatever is buffered.
    base_pts_ = paused_pos_;
    epoch_local_ = local_now();
    state_ = State::kPlaying;
    render_start_pending_ = true;
    arm_render_timer();
  } else {
    restart_from_top(paused_pos_);
  }
}

void Player::seek(net::SimDuration to) {
  if (state_ == State::kIdle || state_ == State::kOpening || live_) return;
  interactions_.push_back(InteractionRecord{InteractionRecord::Kind::kSeek,
                                            net_.now(), to,
                                            net::SimTime::max(), false});
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSessionSeek, host_,
                 static_cast<std::int64_t>(session_), to.us);
  }
  if (observer_) observer_->on_interaction(interactions_.back());
  if (render_timer_) {
    net_.cancel(*render_timer_);
    render_timer_.reset();
  }
  waiting_since_.reset();

  if (cfg_.model == SyncModel::kEtpn) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kSeek));
    w.u64(session_);
    w.i64(to.us);
    ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
    buffer_.clear();
    scripts_.clear();
    pending_slide_.reset();
    demux_ = std::make_unique<media::asf::Demuxer>(header_);
    if (license_) demux_->set_license(drm_, *license_, cfg_.user);
    discard_below_ = to;
    eos_received_ = false;  // the server will stream (and re-EOS) again
    // The jump lands on a far-away packet index: restart the repair and
    // reordering state or the gap would read as one enormous hole, and
    // expect the server's next stream epoch so stragglers are dropped.
    ++stream_epoch_;
    expected_seq_reset_ = true;
    highest_index_ = -1;
    max_index_seen_ = -1;
    received_index_.clear();
    nack_attempts_.clear();
    reorder_.clear();
    next_feed_ = -1;
    repair_total_ = -1;
    eos_deferrals_ = 0;
    state_ = State::kBuffering;
  } else {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kStop));
    w.u64(session_);
    ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
    session_ = 0;
    restart_from_top(to);
  }
}

void Player::restart_from_top(net::SimDuration target) {
  // The pre-orchestrated models re-run the whole presentation and discard
  // everything before the target — there is no transition in the net that
  // could move the token state anywhere else.
  reset_session_state();
  demux_ = std::make_unique<media::asf::Demuxer>(header_);
  if (license_) demux_->set_license(drm_, *license_, cfg_.user);
  discard_below_ = target;
  send_play(net::SimDuration{0});
}

void Player::set_rate(double rate) {
  if (rate <= 0.0 || cfg_.model != SyncModel::kEtpn) return;
  if (state_ != State::kPlaying && state_ != State::kPaused &&
      state_ != State::kBuffering) {
    rate_ = rate;
    return;
  }
  interactions_.push_back(InteractionRecord{InteractionRecord::Kind::kRate,
                                            net_.now(),
                                            {},
                                            net::SimTime::max(),
                                            false});
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSessionRate, host_,
                 static_cast<std::int64_t>(session_),
                 static_cast<std::int64_t>(rate * 1000.0 + 0.5));
  }
  if (observer_) observer_->on_interaction(interactions_.back());
  // Re-anchor the render clock at the current position before changing speed.
  if (state_ == State::kPlaying) {
    base_pts_ = position();
    epoch_local_ = local_now();
  }
  rate_ = rate;
  // Faster playback needs a fatter pipe: renegotiate the QoS channel for
  // the scaled bit-rate (XOCPN's "channels according to the required QoS").
  // Resize in place — the same serializer keeps in-flight packets in order.
  if (cfg_.model != SyncModel::kOcpn && header_.props.avg_bitrate_bps > 0) {
    const auto scaled = static_cast<std::int64_t>(
        static_cast<double>(header_.props.avg_bitrate_bps) *
        cfg_.channel_headroom * rate_);
    if (channel_ != 0) {
      if (!net_.resize_channel(channel_, scaled)) {
        // No capacity for the faster rate: drop to best effort.
        net_.release_channel(channel_);
        channel_ = 0;
      }
    } else if (auto ch = net_.reserve_channel(server_, host_, scaled)) {
      channel_ = *ch;
    }
  }
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Ctl::kSetRate));
  w.u64(session_);
  w.u32(static_cast<std::uint32_t>(rate * 1000.0 + 0.5));
  w.u32(channel_);
  ctl_.send_to(server_, cfg_.server_port, std::move(w).take());
  if (state_ == State::kPlaying) {
    if (render_timer_) {
      net_.cancel(*render_timer_);
      render_timer_.reset();
    }
    arm_render_timer();
  }
}

}  // namespace lod::streaming
