#include "lod/streaming/server.hpp"

#include <algorithm>

namespace lod::streaming {

using net::ByteReader;
using net::ByteWriter;
using proto::Ctl;

StreamingServer::StreamingServer(net::Transport& net, net::HostId host,
                                 ServerConfig cfg)
    : net_(net),
      host_(host),
      config_(cfg.validated()),
      ctl_(net, host, config_.control_port),
      data_(net, host, static_cast<net::Port>(config_.control_port + 1)) {
  auto& reg = net_.obs().metrics();
  trace_ = &net_.obs().trace();
  const obs::Labels host_label{{"host", std::to_string(host_)}};
  packets_sent_ = reg.counter("lod.server.packets_sent", host_label);
  bytes_sent_ = reg.counter("lod.server.bytes_sent", host_label);
  repairs_ = reg.counter("lod.server.repairs", host_label);
  sessions_opened_ = reg.counter("lod.server.sessions_opened", host_label);
  active_sessions_gauge_ = reg.gauge("lod.server.active_sessions", host_label);
  ctl_.on_receive(
      [this](const net::ReliableEndpoint::Message& m) { handle_control(m); });
}

void StreamingServer::configure(ServerConfig cfg) {
  // Pin the port before validating: the port is fixed at construction, so a
  // caller passing a default/stale struct must not be rejected for a field
  // that is ignored anyway.
  cfg.control_port = config_.control_port;
  config_ = cfg.validated();
}

StreamingServer::SessionCounters StreamingServer::make_session_counters(
    std::uint64_t id) {
  auto& reg = net_.obs().metrics();
  const obs::Labels labels{{"host", std::to_string(host_)},
                           {"session", std::to_string(id)}};
  SessionCounters c;
  c.packets_sent = reg.counter("lod.server.session.packets_sent", labels);
  c.bytes_sent = reg.counter("lod.server.session.bytes_sent", labels);
  c.seeks = reg.counter("lod.server.session.seeks", labels);
  c.pauses = reg.counter("lod.server.session.pauses", labels);
  c.repairs = reg.counter("lod.server.session.repairs", labels);
  return c;
}

void StreamingServer::end_session(Session& s) {
  if (s.stopped) return;
  s.stopped = true;
  active_sessions_gauge_.add(-1);
  // Cardinality hygiene: the session's labeled series leave the registry
  // (long simulations would otherwise grow it without bound). The handles
  // in s.stats stay valid — retire() moves the cells to a graveyard — so
  // session_stats() still reads the final values.
  net_.obs().metrics().retire(
      "lod.server.session.", {{"host", std::to_string(host_)},
                              {"session", std::to_string(s.id)}});
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSessionStop, s.client,
                 static_cast<std::int64_t>(s.id));
  }
}

void StreamingServer::publish(std::string name, media::asf::File file) {
  auto it = files_.find(name);
  if (it != files_.end()) {
    // Republish keeps the node (and thus the File*) alive with new content;
    // the serialized-packet cache for the old content must go.
    packet_cache_.erase(&it->second);
    it->second = std::move(file);
    return;
  }
  files_.emplace(std::move(name), std::move(file));
}

std::function<void(const media::asf::DataPacket&)>
StreamingServer::open_live_channel(std::string name, media::asf::Header header) {
  live_[name] = LiveChannel{std::move(header), {}, true};
  return [this, name](const media::asf::DataPacket& pkt) {
    auto it = live_.find(name);
    if (it == live_.end() || !it->second.open) return;
    // Serialize once; every subscriber's datagram shares the same body.
    const net::Payload bytes{media::asf::serialize_packet(pkt)};
    for (std::uint64_t sid : it->second.subscribers) {
      if (Session* s = find_session(sid); s && !s->stopped && !s->paused) {
        // Live packets are unrepeatable; index mirrors the seq counter.
        send_packet(*s, bytes, static_cast<std::uint32_t>(s->next_seq));
      }
    }
  };
}

void StreamingServer::close_live_channel(const std::string& name) {
  auto it = live_.find(name);
  if (it == live_.end()) return;
  it->second.open = false;
  for (std::uint64_t sid : it->second.subscribers) {
    if (Session* s = find_session(sid); s && !s->stopped) {
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Ctl::kEndOfStream));
      w.u64(sid);
      w.u32(0);  // live streams are unrepeatable: no repair horizon
      reply(*s, std::move(w).take());
    }
  }
}

std::size_t StreamingServer::active_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (!s.stopped) ++n;
  }
  return n;
}

std::optional<SessionStats> StreamingServer::session_stats(
    std::uint64_t session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return std::nullopt;
  const SessionCounters& c = it->second.stats;
  SessionStats out;
  out.packets_sent = c.packets_sent.value();
  out.bytes_sent = c.bytes_sent.value();
  out.seeks = c.seeks.value();
  out.pauses = c.pauses.value();
  out.repairs = c.repairs.value();
  return out;
}

std::uint64_t ServerMetrics::packets_sent() const {
  return server_->packets_sent_.value();
}
std::uint64_t ServerMetrics::bytes_sent() const {
  return server_->bytes_sent_.value();
}
std::uint64_t ServerMetrics::repairs() const {
  return server_->repairs_.value();
}
std::uint64_t ServerMetrics::sessions_opened() const {
  return server_->sessions_opened_.value();
}
std::int64_t ServerMetrics::active_sessions() const {
  return server_->active_sessions_gauge_.value();
}
std::optional<SessionStats> ServerMetrics::session(std::uint64_t id) const {
  return server_->session_stats(id);
}
obs::Snapshot ServerMetrics::snapshot() const {
  return server_->net_.obs().snapshot();
}

StreamingServer::Session* StreamingServer::find_session(std::uint64_t id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

void StreamingServer::reply(const Session& s, std::vector<std::byte> payload) {
  ctl_.send_to(s.client, s.client_ctl_port, std::move(payload));
}
void StreamingServer::reply_to(net::HostId h, net::Port p,
                               std::vector<std::byte> payload) {
  ctl_.send_to(h, p, std::move(payload));
}

void StreamingServer::handle_control(const net::ReliableEndpoint::Message& m) {
  ByteReader r(m.payload);
  const Ctl tag = static_cast<Ctl>(r.u8());

  auto send_error = [&](const std::string& msg) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kError));
    w.str(msg);
    reply_to(m.src, m.src_port, std::move(w).take());
  };

  switch (tag) {
    case Ctl::kDescribe: {
      const std::string name = r.str();
      const obs::TraceContext ctx = proto::read_trace_context(r);
      const media::asf::Header* header = nullptr;
      if (auto it = files_.find(name); it != files_.end()) {
        header = &it->second.header;
      } else if (auto lt = live_.find(name); lt != live_.end()) {
        header = &lt->second.header;
      }
      if (!header) {
        send_error("no such content: " + name);
        return;
      }
      // Instant span: the origin's handling is synchronous, but the marker
      // pins this hop (and its actor) into the caller's span tree.
      const std::uint64_t sp =
          trace_->begin_span(ctx, "server.describe", host_);
      trace_->end_span(ctx, sp, "server.describe", host_);
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Ctl::kDescribeOk));
      w.blob(media::asf::serialize_header(*header));
      reply_to(m.src, m.src_port, std::move(w).take());
      return;
    }

    case Ctl::kPlay: {
      const std::string name = r.str();
      const net::SimDuration from{r.i64()};
      const net::Port data_port = r.u16();
      const net::ChannelId channel = r.u32();
      const obs::TraceContext ctx = proto::read_trace_context(r);
      auto it = files_.find(name);
      if (it == files_.end()) {
        send_error("no such content: " + name);
        return;
      }
      Session s;
      s.id = next_session_++;
      s.client = m.src;
      s.client_ctl_port = m.src_port;
      s.data_port = data_port;
      s.channel = channel;
      s.file = &it->second;
      s.next_packet = media::asf::seek_packet(*s.file, from);
      s.pace_epoch = net_.now();
      s.pace_offset = s.next_packet < s.file->packets.size()
                          ? s.file->packets[s.next_packet].send_time
                          : net::SimDuration{0};
      const std::uint64_t id = s.id;
      s.stats = make_session_counters(id);
      sessions_.emplace(id, std::move(s));
      sessions_opened_.inc();
      active_sessions_gauge_.add(1);
      const std::uint64_t sp = trace_->begin_span(ctx, "server.open", host_,
                                                  static_cast<std::int64_t>(id));
      trace_->end_span(ctx, sp, "server.open", host_,
                       static_cast<std::int64_t>(id));
      if (trace_->enabled()) {
        trace_->emit_in(ctx, obs::EventType::kSessionOpen, m.src,
                        static_cast<std::int64_t>(id), from.us, name);
      }
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Ctl::kPlayOk));
      w.u64(id);
      reply_to(m.src, m.src_port, std::move(w).take());
      schedule_next(sessions_.at(id));
      return;
    }

    case Ctl::kJoinLive: {
      const std::string name = r.str();
      const net::Port data_port = r.u16();
      auto it = live_.find(name);
      if (it == live_.end()) {
        send_error("no such live channel: " + name);
        return;
      }
      Session s;
      s.id = next_session_++;
      s.client = m.src;
      s.client_ctl_port = m.src_port;
      s.data_port = data_port;
      s.live_name = name;
      const std::uint64_t id = s.id;
      s.stats = make_session_counters(id);
      sessions_.emplace(id, std::move(s));
      sessions_opened_.inc();
      active_sessions_gauge_.add(1);
      if (trace_->enabled()) {
        trace_->emit(obs::EventType::kSessionOpen, m.src,
                     static_cast<std::int64_t>(id), 0, name);
      }
      it->second.subscribers.push_back(id);
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Ctl::kPlayOk));
      w.u64(id);
      reply_to(m.src, m.src_port, std::move(w).take());
      if (!it->second.open) close_live_channel(name);  // late join: EOS
      return;
    }

    case Ctl::kPause: {
      if (Session* s = find_session(r.u64()); s && s->file) {
        s->paused = true;
        s->stats.pauses.inc();
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionPause, s->client,
                       static_cast<std::int64_t>(s->id));
        }
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
      }
      return;
    }

    case Ctl::kResume: {
      if (Session* s = find_session(r.u64()); s && s->file && s->paused) {
        s->paused = false;
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionResume, s->client,
                       static_cast<std::int64_t>(s->id));
        }
        s->pace_epoch = net_.now();
        s->pace_offset = s->next_packet < s->file->packets.size()
                             ? s->file->packets[s->next_packet].send_time
                             : net::SimDuration{0};
        schedule_next(*s);
      }
      return;
    }

    case Ctl::kSeek: {
      const std::uint64_t sid = r.u64();
      const net::SimDuration to{r.i64()};
      if (Session* s = find_session(sid); s && s->file) {
        s->stats.seeks.inc();
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionSeek, s->client,
                       static_cast<std::int64_t>(s->id), to.us);
        }
        ++s->epoch;  // packets from before the jump are now stale
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
        s->next_packet = media::asf::seek_packet(*s->file, to);
        s->pace_epoch = net_.now();
        s->pace_offset = s->next_packet < s->file->packets.size()
                             ? s->file->packets[s->next_packet].send_time
                             : net::SimDuration{0};
        if (!s->paused) schedule_next(*s);
      }
      return;
    }

    case Ctl::kSetRate: {
      const std::uint64_t sid = r.u64();
      const std::uint32_t permille = r.u32();
      const net::ChannelId channel = r.u32();
      if (Session* s = find_session(sid); s && s->file && permille > 0) {
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionRate, s->client,
                       static_cast<std::int64_t>(s->id), permille);
        }
        s->channel = channel;  // the client renegotiated its QoS reservation
        // Re-anchor the pacing at the new speed, like resume does.
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
        s->rate = static_cast<double>(permille) / 1000.0;
        s->pace_epoch = net_.now();
        s->pace_offset = s->next_packet < s->file->packets.size()
                             ? s->file->packets[s->next_packet].send_time
                             : net::SimDuration{0};
        if (!s->paused) schedule_next(*s);
      }
      return;
    }

    case Ctl::kRepair: {
      // Selective retransmission: the client names the file packets it never
      // received; if the session is live-on-file we resend them out of band
      // (the paced schedule is untouched).
      const std::uint64_t sid = r.u64();
      const std::uint32_t count = r.u32();
      Session* s = find_session(sid);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t idx = r.u32();
        if (s && s->file && !s->stopped &&
            idx < s->file->packets.size()) {
          s->stats.repairs.inc();
          repairs_.inc();
          if (trace_->enabled()) {
            trace_->emit(obs::EventType::kRepairResend, s->client,
                         static_cast<std::int64_t>(s->id), idx);
          }
          send_packet(*s, cached_packet(s->file, idx), idx);
        }
      }
      return;
    }

    case Ctl::kStop:
    case Ctl::kLeaveLive: {
      const std::uint64_t sid = r.u64();
      if (Session* s = find_session(sid)) {
        end_session(*s);
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
        if (!s->live_name.empty()) {
          if (auto lt = live_.find(s->live_name); lt != live_.end()) {
            auto& subs = lt->second.subscribers;
            subs.erase(std::remove(subs.begin(), subs.end(), sid), subs.end());
          }
        }
      }
      return;
    }

    case Ctl::kTimeSync: {
      const std::int64_t client_local = r.i64();
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Ctl::kTimeSyncReply));
      w.i64(client_local);
      w.i64(net_.local_now(host_).us);
      reply_to(m.src, m.src_port, std::move(w).take());
      return;
    }

    default:
      return;  // unknown/client-only tags ignored
  }
}

void StreamingServer::schedule_next(Session& s) {
  if (s.stopped || s.paused || !s.file) return;
  if (s.next_packet >= s.file->packets.size()) {
    if (trace_->enabled()) {
      trace_->emit(obs::EventType::kSessionEos, s.client,
                   static_cast<std::int64_t>(s.id));
    }
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kEndOfStream));
    w.u64(s.id);
    // Total file packets: lets repair-mode clients NACK trailing losses.
    w.u32(static_cast<std::uint32_t>(s.file->packets.size()));
    reply(s, std::move(w).take());
    return;
  }
  // Pace by send_time, bursting the first preroll's worth ahead of schedule
  // so the client can fill its buffer fast — but cap the burst at ~4x the
  // content's bit-rate so the fast-start cannot overflow drop-tail queues
  // (real servers bound their fast-start rate the same way).
  const auto& pkt = s.file->packets[s.next_packet];
  const net::SimDuration media_ahead =
      pkt.send_time - s.pace_offset - s.file->header.props.preroll;
  net::SimTime due =
      s.pace_epoch + net::SimDuration{static_cast<std::int64_t>(
                         static_cast<double>(media_ahead.us) / s.rate)};
  const std::int64_t bps =
      std::max<std::int64_t>(s.file->header.props.avg_bitrate_bps, 8'000);
  double burst_bps = config_.fast_start_multiplier * static_cast<double>(bps);
  // A session on a reserved channel cannot burst past the reservation: the
  // channel serializer would just queue the excess and add head-of-line
  // delay in front of everything (including repair resends).
  if (s.channel != 0) {
    if (const std::int64_t rate = net_.channel_rate_bps(s.channel)) {
      burst_bps = std::min(burst_bps, static_cast<double>(rate) * 0.95);
    }
  }
  const net::SimDuration min_gap{static_cast<std::int64_t>(
      static_cast<double>(s.file->header.props.packet_bytes) * 8e6 /
      std::max(burst_bps, 8'000.0))};
  if (s.last_send.us > 0 && due < s.last_send + min_gap) {
    due = s.last_send + min_gap;
  }
  const net::SimTime now = net_.now();
  if (due < now) due = now;
  const std::uint64_t sid = s.id;
  s.timer = net_.schedule_at(due, [this, sid] {
    Session* sp = find_session(sid);
    if (!sp || sp->stopped || sp->paused || !sp->file) return;
    sp->timer.reset();
    sp->last_send = net_.now();
    send_packet(*sp, cached_packet(sp->file, sp->next_packet),
                static_cast<std::uint32_t>(sp->next_packet));
    ++sp->next_packet;
    schedule_next(*sp);
  });
}

const net::Payload& StreamingServer::cached_packet(const media::asf::File* f,
                                                   std::size_t idx) {
  auto& cache = packet_cache_[f];
  if (cache.size() != f->packets.size()) cache.resize(f->packets.size());
  net::Payload& slot = cache[idx];
  if (slot.empty()) slot = net::Payload{media::asf::serialize_packet(f->packets[idx])};
  return slot;
}

void StreamingServer::send_packet(Session& s, const net::Payload& bytes,
                                  std::uint32_t packet_index) {
  // Per-send frame header only; the serialized packet rides as a shared
  // body, so unicast fan-out, repairs and live broadcast all reuse the
  // same encoded bytes.
  ByteWriter w;
  w.u32(proto::kDataMagic);
  w.u64(s.id);
  w.u32(s.epoch);
  w.u64(s.next_seq++);
  w.u32(packet_index);

  net::Datagram p;
  p.src = host_;
  p.dst = s.client;
  p.src_port = data_.port();
  p.dst_port = s.data_port;
  p.payload = std::move(w).take();
  p.body = bytes;
  // ASF ships FIXED-size data packets (padding included), so the wire cost
  // is the nominal packet size + session framing + UDP/IP — never less,
  // even for a padded packet.
  const std::uint32_t nominal =
      (s.file ? s.file->header.props.packet_bytes : 1400u) + 20u;
  p.wire_size =
      std::max<std::uint32_t>(
          static_cast<std::uint32_t>(p.payload.size() + p.body.size()),
          nominal) +
      28;
  p.channel = s.channel;
  s.stats.packets_sent.inc();
  s.stats.bytes_sent.inc(p.wire_size);
  packets_sent_.inc();
  bytes_sent_.inc(p.wire_size);
  net_.send(std::move(p));
}

}  // namespace lod::streaming
