#include "lod/streaming/encoder.hpp"

#include <algorithm>

namespace lod::streaming {

using media::asf::Header;
using media::asf::Muxer;
using media::asf::ScriptCommand;

namespace {
constexpr std::uint16_t kVideoStream = 1;
constexpr std::uint16_t kAudioStream = 2;
/// Live encoders mux and ship packets in windows of this much media time.
constexpr net::SimDuration kLiveWindow = net::msec(1000);

}  // namespace

Header make_header(const EncodeJob& job, net::SimDuration play_duration,
                   const media::KeyId& key_id) {
  Header h;
  h.props.title = job.title;
  h.props.author = job.author;
  h.props.play_duration = play_duration;
  h.props.preroll = job.preroll;
  h.props.packet_bytes = job.packet_bytes;
  h.props.avg_bitrate_bps = job.profile.total_bps;
  if (!key_id.empty()) {
    h.drm.is_protected = true;
    h.drm.key_id = key_id;
    h.drm.license_url = job.license_url;
  }
  if (job.profile.has_video()) {
    h.streams.push_back(media::StreamInfo{
        kVideoStream, media::MediaType::kVideo, job.profile.video_codec,
        job.profile.video_bps, job.profile.width, job.profile.height, 0});
  }
  h.streams.push_back(media::StreamInfo{
      kAudioStream, media::MediaType::kAudio, job.profile.audio_codec,
      job.profile.audio_bps, 0, 0, job.profile.audio_sample_rate()});
  return h;
}

EncodeResult encode_lecture(const EncodeJob& job,
                            media::LectureVideoSource& video,
                            media::LectureAudioSource& audio,
                            const std::vector<ScriptCommand>& scripts) {
  EncodeResult out;
  if (job.drm && job.protect_content) {
    out.key_id = job.drm->create_key(job.title.empty() ? "lecture" : job.title);
  }
  const net::SimDuration duration =
      std::max(video.duration(), audio.duration());
  Header header = make_header(job, duration, out.key_id);
  Muxer mux(header, job.drm);

  if (job.profile.has_video()) {
    auto vcodec = media::make_video_codec(job.profile.video_codec);
    vcodec->configure(job.profile.video_config());
    media::VideoFrame f;
    std::uint64_t i = 0;
    while (video.next(f)) {
      auto u = vcodec->encode(f, i++);
      u.stream_id = kVideoStream;
      mux.add_unit(u);
    }
  }
  {
    auto acodec = media::make_audio_codec(job.profile.audio_codec);
    acodec->configure(job.profile.audio_config());
    AudioPacker packer(job.audio_superframe);
    media::AudioBlock b;
    while (audio.next(b)) {
      auto u = acodec->encode(b);
      u.stream_id = kAudioStream;
      if (auto full = packer.push(u)) mux.add_unit(*full);
    }
    if (auto tail = packer.flush()) mux.add_unit(*tail);
  }
  for (const auto& s : scripts) mux.add_script(s);

  out.file = mux.finalize(job.index_interval);
  return out;
}

// --- LiveEncoder -----------------------------------------------------------------

LiveEncoder::LiveEncoder(net::Simulator& sim, const EncodeJob& job,
                         media::LectureVideoSource video,
                         media::LectureAudioSource audio,
                         std::vector<ScriptCommand> scripts)
    : sim_(sim),
      job_(job),
      video_(std::move(video)),
      audio_(std::move(audio)),
      scripts_(std::move(scripts)) {
  std::sort(scripts_.begin(), scripts_.end(),
            [](const ScriptCommand& a, const ScriptCommand& b) {
              return a.at < b.at;
            });
  if (job_.drm && job_.protect_content) {
    key_id_ = job_.drm->create_key(job_.title.empty() ? "live" : job_.title);
  }
  const net::SimDuration duration =
      std::max(video_.duration(), audio_.duration());
  header_ = make_header(job_, duration, key_id_);
  if (job_.profile.has_video()) {
    vcodec_ = media::make_video_codec(job_.profile.video_codec);
    vcodec_->configure(job_.profile.video_config());
  }
  acodec_ = media::make_audio_codec(job_.profile.audio_codec);
  acodec_->configure(job_.profile.audio_config());
  audio_packer_ = AudioPacker(job_.audio_superframe);
}

LiveEncoder::~LiveEncoder() {
  if (timer_) sim_.cancel(*timer_);
}

void LiveEncoder::start() {
  if (running_ || done_) return;
  running_ = true;
  epoch_ = sim_.now();
  window_start_ = {};
  tick();
}

void LiveEncoder::flush_ready(net::SimDuration upto) {
  // Mux the finished window [window_start_, upto) into packets and emit.
  if (window_units_.empty() && window_scripts_.empty()) {
    window_start_ = upto;
    return;
  }
  Muxer mux(header_, job_.drm);
  for (const auto& u : window_units_) mux.add_unit(u);
  for (const auto& s : window_scripts_) mux.add_script(s);
  window_units_.clear();
  window_scripts_.clear();
  window_start_ = upto;
  // No index for live packets (the paper: indexer applies to stored files).
  const auto file = mux.finalize(net::SimDuration{0});
  for (const auto& p : file.packets) {
    ++packets_emitted_;
    if (sink_) sink_(p);
  }
}

void LiveEncoder::tick() {
  timer_.reset();
  const net::SimDuration media_now = sim_.now() - epoch_;

  // Capture everything due by now: video frames at their frame interval,
  // audio blocks continuously, script commands as the presenter hits them.
  bool video_left = false;
  if (vcodec_) {
    const double fps = std::max(job_.profile.fps, 1.0);
    media::VideoFrame f;
    while (true) {
      const net::SimDuration next_pts =
          net::secf(static_cast<double>(frame_index_) / fps);
      if (next_pts > media_now) {
        video_left = true;
        break;
      }
      if (!video_.next(f)) break;
      auto u = vcodec_->encode(f, frame_index_++);
      u.stream_id = kVideoStream;
      window_units_.push_back(u);
    }
  }
  while (audio_pos_ < media_now) {
    media::AudioBlock blk;
    if (!audio_.next(blk)) {
      if (auto tail = audio_packer_.flush()) window_units_.push_back(*tail);
      break;
    }
    audio_pos_ = blk.pts + blk.duration;
    auto u = acodec_->encode(blk);
    u.stream_id = kAudioStream;
    if (auto full = audio_packer_.push(u)) window_units_.push_back(*full);
  }
  if (audio_pos_ >= audio_.duration()) {
    if (auto tail = audio_packer_.flush()) window_units_.push_back(*tail);
  }
  while (script_cursor_ < scripts_.size() &&
         scripts_[script_cursor_].at <= media_now) {
    window_scripts_.push_back(scripts_[script_cursor_++]);
  }

  const bool audio_left = audio_pos_ < audio_.duration();
  if (media_now - window_start_ >= kLiveWindow || (!video_left && !audio_left)) {
    flush_ready(media_now);
  }

  if (!video_left && !audio_left && script_cursor_ >= scripts_.size()) {
    flush_ready(media_now);
    running_ = false;
    done_ = true;
    return;
  }
  // Tick at the audio block cadence (finer of the two media clocks).
  timer_ = sim_.schedule_after(net::msec(100), [this] { tick(); });
}

std::vector<ScriptCommand> slide_flip_commands(
    const std::vector<net::SimDuration>& slide_times,
    const std::string& slide_url_prefix) {
  std::vector<ScriptCommand> out;
  out.reserve(slide_times.size());
  for (std::size_t i = 0; i < slide_times.size(); ++i) {
    out.push_back(ScriptCommand{slide_times[i], "SLIDE",
                                slide_url_prefix + std::to_string(i)});
  }
  return out;
}

std::vector<ScriptCommand> annotation_commands(
    const std::vector<media::Annotation>& annotations) {
  std::vector<ScriptCommand> out;
  out.reserve(annotations.size());
  for (const auto& a : annotations) {
    out.push_back(ScriptCommand{
        a.at, "ANNOT", std::to_string(a.slide) + ":" + a.text});
  }
  return out;
}

}  // namespace lod::streaming
