#pragma once

#include "lod/net/transport_base.hpp"

/// \file selector.hpp
/// The player-side site selection seam.
///
/// A distributed deployment serves one content name from several sites (the
/// origin plus edge replicas). The player does not know the topology; it
/// asks a `SiteSelector` where to open, reports the delays it actually
/// observes, and asks again when a site stops responding. The concrete
/// policy (EWMA delay ranking, failover bookkeeping) lives in `lod::edge`'s
/// `ReplicaSelector`; this interface keeps `lod_streaming` free of any edge
/// dependency.

namespace lod::streaming {

class SiteSelector {
 public:
  virtual ~SiteSelector() = default;

  /// The site a new session should open against.
  virtual net::HostId pick_site() = 0;

  /// An observed one-way delay to \p site (control-plane RTT/2: DESCRIBE
  /// round trips, TIMESYNC exchanges). Feeds the selector's estimate.
  virtual void observe(net::HostId site, net::SimDuration delay) {
    (void)site;
    (void)delay;
  }

  /// \p site stopped responding mid-session; returns where to fail over to
  /// (implementations must always have an answer — the origin never leaves).
  virtual net::HostId failover_from(net::HostId site) = 0;
};

}  // namespace lod::streaming
