#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lod/media/asf.hpp"
#include "lod/media/drm.hpp"
#include "lod/net/transport.hpp"
#include "lod/streaming/protocol.hpp"
#include "lod/streaming/selector.hpp"

/// \file player.hpp
/// The media player / browser plug-in stand-in.
///
/// "Using the browser with the windows media services allows those students
/// to view live video of the teacher giving his speech, along with
/// synchronized images of his presentation slides and all the annotations."
///
/// The player receives ASF packets over datagrams, reassembles access units,
/// buffers until preroll, renders on a local-clock schedule, executes script
/// commands (fetching slides from the web server exactly when a SLIDE
/// command's presentation time is reached), and records everything it did —
/// which is what the figures' and claims' benches measure.
///
/// The `SyncModel` selects which synchronization discipline the player uses,
/// operationalizing the paper's three-way comparison:
///
///  - kOcpn  — pre-orchestrated playout only. Local unsynchronized clock,
///             best-effort transport, and NO live schedule changes: pause /
///             seek are implemented the only way the base model allows,
///             restarting the presentation from the top.
///  - kXocpn — kOcpn plus a QoS channel reserved for the stream (the
///             client asks the network for the content's bit-rate), so cross
///             traffic cannot stall it. Still no user interactions, still an
///             unsynchronized clock.
///  - kEtpn  — the paper's extended model: reserved channel, NTP-style clock
///             synchronization against the server, and native pause / resume
///             / seek / rate handled mid-stream by the server session.

namespace lod::streaming {

enum class SyncModel : std::uint8_t { kOcpn, kXocpn, kEtpn };

std::string to_string(SyncModel m);

/// Player construction options.
struct PlayerConfig {
  SyncModel model{SyncModel::kEtpn};
  net::Port ctl_port{5000};
  net::Port data_port{5001};
  /// The serving site's control port. The paper-era default (554, RTSP's
  /// homage) is privileged on real kernels; real-backend deployments point
  /// this at an unprivileged port instead of hard-wiring the well-known one.
  net::Port server_port{proto::kControlPort};
  /// The web server's RPC port for slide fetches.
  net::Port web_port{proto::kWebPort};
  /// Buffer this much media before starting (<=0: use the header's preroll).
  net::SimDuration preroll_override{-1};
  /// ETPN only: how often to re-run clock synchronization.
  net::SimDuration clock_sync_interval{net::sec(30)};
  /// Who is watching (DRM license subject).
  std::string user{"student"};
  /// Where slides are fetched from when SLIDE script commands fire.
  net::HostId web_server{0};
  /// Safety factor on the reserved channel rate (XOCPN/ETPN).
  double channel_headroom{1.25};
  /// Fetch slide images as soon as their SLIDE command is demuxed (ahead of
  /// its presentation time) instead of at flip time. An extension over the
  /// paper's browser behaviour; the A2 ablation bench quantifies the win.
  bool prefetch_slides{false};
  /// Selective repair (ETPN only): when a datagram gap is detected, NACK the
  /// missing file packets over the control channel. With a multi-second
  /// preroll the repair usually lands before the media is due.
  bool repair_losses{false};
  /// Absolutely scheduled presentation: render media position p at master
  /// wall time `*scheduled_start + p`, interpreted ON THE LOCAL CLOCK. This
  /// is the distributed-presentation mode where clock quality matters: an
  /// ETPN player's synchronized clock tracks the master, an OCPN player's
  /// raw clock shifts the whole rendering by its offset.
  std::optional<net::SimTime> scheduled_start;
  /// Selector-driven sessions only: how long the stream may be starved (no
  /// packets while opening/buffering, or stalled while playing) before the
  /// player abandons the site and reopens at the selector's next pick.
  /// <= 0 disables the watchdog.
  net::SimDuration failover_timeout{net::msec(2000)};
  /// How often the failover watchdog samples progress.
  net::SimDuration failover_check_interval{net::msec(500)};
  /// Selector-driven sessions only: on a watchdog failover, freeze the
  /// session and ship a state image to the selector's next pick over the
  /// `/edge/migrate` RPC instead of re-describing from scratch. The player
  /// keeps rendering from its jitter buffer during the handshake; a replica
  /// that cannot adopt (cold meta, pre-migration build, no reply before the
  /// next watchdog timeout) falls back to the re-describe reopen. Not
  /// applicable to live joins.
  bool migrate_on_failover{false};
  /// Send the session STOP automatically the moment playback finishes,
  /// instead of waiting for an explicit stop(). Off by default — the paper's
  /// player (and the existing benches) hold the session open until the user
  /// closes it — but load harnesses driving thousands of scripted sessions
  /// (see lod::LoadGen) switch it on so server/edge session state drains as
  /// sessions complete and the event queue can run dry.
  bool auto_stop_on_finish{false};
};

/// One rendered access unit, in three clocks at once.
struct RenderEvent {
  media::MediaType type;
  std::uint16_t stream_id;
  net::SimDuration pts;
  net::SimTime true_time;   ///< global simulation time (ground truth)
  net::SimTime local_time;  ///< this host's (possibly skewed) clock
};

/// A slide made visible by a SLIDE script command.
struct SlideEvent {
  std::string url;
  net::SimDuration pts;          ///< when the flip was scheduled in the media
  net::SimTime shown_true;       ///< when it actually appeared on screen
  net::SimDuration fetch_latency;
};

/// An annotation surfaced by an ANNOT script command.
struct AnnotationEvent {
  std::string text;
  net::SimDuration pts;
  net::SimTime shown_true;
};

/// A playback stall (buffer underrun): rendering resumed `duration` late.
struct StallEvent {
  net::SimTime at;
  net::SimDuration duration;
};

/// A user interaction and how long the player took to show media again.
struct InteractionRecord {
  enum class Kind : std::uint8_t { kPause, kResume, kSeek, kRate };
  Kind kind;
  net::SimTime at;
  net::SimDuration target;       ///< seek target (kSeek only)
  net::SimTime first_render_after{net::SimTime::max()};
  bool satisfied{false};

  net::SimDuration resync_latency() const {
    return satisfied ? first_render_after - at : net::SimDuration{-1};
  }
};

/// The render-timeline portion of a player's state, as replicated across
/// sites by `src/sync`: the render-clock mapping (media pts `base_pts` is on
/// screen at local instant `epoch_local`), the pause position and rate, and
/// the reorder-buffer cursor. Deliberately EXCLUDES the session lifecycle —
/// state machine, serving site, buffered media — because sync repairs where
/// the playhead is, not what the session is doing.
struct PlayerSyncCursor {
  std::int64_t base_pts_us{0};
  std::int64_t epoch_local_us{0};
  std::int64_t paused_pos_us{0};
  double rate{1.0};
  std::int64_t next_feed{-1};
  std::int64_t highest_index{-1};
  std::uint32_t stream_epoch{0};
};

/// The reorder-buffer half of the receive pipeline (repair mode): every
/// packet held waiting for a hole to fill, plus the feed cursor — what a
/// migrated session needs so outstanding repairs survive the move.
struct PlayerReorderSnapshot {
  /// index -> serialized packet bytes, ascending index.
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> held;
  std::int64_t next_feed{-1};
  std::int64_t repair_total{-1};
  bool eos_received{false};
};

/// Pending NACK/repair bookkeeping: which file packets have landed and how
/// many NACK attempts each outstanding hole has burned. Sorted, so the
/// serialized form is deterministic across sites.
struct PlayerRepairSnapshot {
  std::vector<std::uint32_t> received;  ///< ascending
  std::vector<std::pair<std::uint32_t, std::uint8_t>> nacks;  ///< by index
  std::int64_t highest_index{-1};
  std::int64_t max_index_seen{-1};
  std::uint64_t repairs_requested{0};
  std::uint64_t repairs_received{0};
};

/// Slide-cache references: which slide URLs are fully prefetched. In-flight
/// fetches are deliberately absent — a fetch is not state until it lands,
/// and the restored session simply re-fetches on demand.
struct PlayerSlideCacheSnapshot {
  std::vector<std::string> cached;  ///< sorted
};

/// Subscriber interface for the player's typed events: the uniform
/// replacement for scraping the record vectors. All callbacks default to
/// no-ops; override what you need. Events fire synchronously at the moment
/// they happen in simulation time.
class PlayerObserver {
 public:
  virtual ~PlayerObserver() = default;
  virtual void on_render(const RenderEvent&) {}
  virtual void on_slide(const SlideEvent&) {}
  virtual void on_annotation(const AnnotationEvent&) {}
  virtual void on_stall(const StallEvent&) {}
  /// Fired when the interaction is issued (before it is satisfied).
  virtual void on_interaction(const InteractionRecord&) {}
  virtual void on_finished() {}
};

/// The player.
class Player {
 public:
  /// \p drm is the license authority (nullable for unprotected content);
  /// the player asks it for a license at open time, as "rendering" requires.
  Player(net::Transport& net, net::HostId host, PlayerConfig cfg,
         media::DrmSystem* drm = nullptr);
  ~Player();
  Player(const Player&) = delete;
  Player& operator=(const Player&) = delete;

  // --- session ------------------------------------------------------------------

  /// DESCRIBE + (if protected) license acquisition + (XOCPN/ETPN) channel
  /// reservation + (ETPN) first clock sync; then PLAY from \p from.
  void open_and_play(net::HostId server, std::string content,
                     net::SimDuration from = {});

  /// Like `open_and_play`, but the serving site comes from \p sel (the edge
  /// tier's delay-aware replica selection). The player feeds measured
  /// DESCRIBE and TIMESYNC round trips back into the selector, and a
  /// progress watchdog reopens the session at `sel.failover_from(site)` if
  /// the site stops responding. \p sel must outlive the session.
  void open_and_play_via(SiteSelector& sel, std::string content,
                         net::SimDuration from = {});

  /// Arrange an absolutely scheduled start (see PlayerConfig::scheduled_start).
  /// Must be called before rendering begins.
  void set_scheduled_start(net::SimTime master_start) {
    cfg_.scheduled_start = master_start;
  }

  /// Join a live broadcast channel.
  void join_live(net::HostId server, std::string name);

  /// User interactions (see SyncModel semantics above).
  void pause();
  void resume();
  void seek(net::SimDuration to);
  /// Playback speed (ETPN only; >0). The server re-paces the session and the
  /// render clock advances at the new rate. A no-op for OCPN/XOCPN — the
  /// pre-orchestrated models have no speed transition at all.
  void set_rate(double rate);
  double rate() const { return rate_; }

  /// Tear the session down.
  void stop();

  // --- state ---------------------------------------------------------------------

  bool playing() const { return state_ == State::kPlaying; }
  bool buffering() const { return state_ == State::kBuffering; }
  bool finished() const { return state_ == State::kFinished; }
  bool paused_state() const { return state_ == State::kPaused; }
  /// Current media position per the render clock.
  net::SimDuration position() const;

  /// Export the render-timeline state for sync-layer replication.
  PlayerSyncCursor sync_cursor() const;

  /// Install a replicated cursor. While playing, the player immediately
  /// rolls forward through buffered script commands up to the restored
  /// position (the catch-up half of a resync) and re-arms the renderer on
  /// the restored timeline; in any other state the fields land silently and
  /// take effect when rendering (re)starts.
  void restore_sync_cursor(const PlayerSyncCursor& c);

  // --- observability (what the benches read) ---------------------------------------

  /// Subscribe to typed events (nullptr unsubscribes). The observer must
  /// outlive the player or be reset before destruction. Registry series
  /// (`lod.player.*{host}`) are published regardless of any observer.
  void set_observer(PlayerObserver* obs) { observer_ = obs; }
  PlayerObserver* observer() const { return observer_; }

  const std::vector<RenderEvent>& rendered() const { return rendered_; }
  const std::vector<SlideEvent>& slides() const { return slides_; }
  const std::vector<AnnotationEvent>& annotations() const { return annotations_; }
  const std::vector<StallEvent>& stalls() const { return stalls_; }
  const std::vector<InteractionRecord>& interactions() const {
    return interactions_;
  }
  /// From PLAY issued to first unit rendered.
  net::SimDuration startup_delay() const { return startup_delay_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t units_rendered() const { return rendered_.size(); }
  std::uint64_t units_lost() const { return units_lost_; }
  std::uint64_t repairs_requested() const { return repairs_requested_; }
  std::uint64_t repairs_received() const { return repairs_received_; }
  bool drm_blocked() const { return drm_blocked_; }
  /// Last measured clock offset correction (ETPN), for diagnostics.
  net::SimDuration last_clock_correction() const { return last_correction_; }
  /// The site this session is (or was last) served from.
  net::HostId current_server() const { return server_; }
  /// Times the watchdog abandoned a site and reopened elsewhere.
  std::uint64_t failovers() const { return failovers_; }
  /// Times a failover moved the session via the migration handshake
  /// (subset of failovers(); the rest re-described from scratch).
  std::uint64_t migrations() const { return migrations_; }
  /// The content this session is (or was last) playing.
  const std::string& content() const { return content_; }
  /// The server-side session id (0 before kPlayOk).
  std::uint64_t session_id() const { return session_; }

  // --- session snapshot (sync/migration surfaces) ----------------------------------

  /// Export / restore the reorder-buffer contents (held packets + cursors).
  PlayerReorderSnapshot reorder_snapshot() const;
  /// Installing a snapshot drains whatever became contiguous and re-arms the
  /// hole timer, exactly as if the held packets had just arrived.
  void restore_reorder(const PlayerReorderSnapshot& s);

  /// Export / restore the NACK/repair bookkeeping.
  PlayerRepairSnapshot repair_snapshot() const;
  void restore_repair(const PlayerRepairSnapshot& s);

  /// Export / restore completed slide-cache references. Restore stamps each
  /// URL as cached "now" — latency history does not migrate.
  PlayerSlideCacheSnapshot slide_cache_snapshot() const;
  void restore_slide_cache(const PlayerSlideCacheSnapshot& s);

  /// The session's trace identity, for freezing alongside the media state so
  /// a restored session keeps emitting spans under the original root.
  const obs::TraceContext& session_context() const { return session_ctx_; }
  std::uint64_t session_root_span() const { return session_span_; }
  /// Adopt a frozen trace identity instead of minting a fresh one. The next
  /// shared-path open reuses it (no new "player.session" root).
  void restore_session_trace(std::uint64_t trace_id, std::uint64_t root_span);

  /// Migration seam: called at failover time (migrate_on_failover only) to
  /// produce the state image shipped in the `/edge/migrate` body. Installed
  /// by the sync layer (`lod::sync::attach_migration_image`); without one
  /// the handshake ships an empty image (cursor-only resume).
  void set_session_image_provider(
      std::function<std::vector<std::byte>()> provider) {
    image_provider_ = std::move(provider);
  }

 private:
  enum class State : std::uint8_t {
    kIdle, kOpening, kBuffering, kPlaying, kPaused, kFinished
  };

  struct BufferedUnit {
    media::EncodedUnit meta;
    // Content bytes are dropped after demux; the renderer only needs meta.
  };

  /// Mint the per-session trace + root span (user-facing opens only; a
  /// failover reopen stays inside the original session's trace).
  void begin_session_trace();
  /// Shared open path for `open_and_play` / `open_and_play_via` / failover.
  void open_to(net::HostId server, std::string content, net::SimDuration from);
  /// (Re)start the progress watchdog (selector-driven sessions only).
  void arm_failover_watchdog();
  void watchdog_tick();
  /// Abandon the current site and reopen at the selector's next pick.
  void do_failover();
  /// Freeze the session and ship its image to \p next over `/edge/migrate`;
  /// on any failure fall back to the re-describe reopen at \p resume_at.
  void start_migration(net::HostId next, net::SimDuration resume_at);
  /// Adopt the replica's session (200 reply): swap the serving site without
  /// touching the jitter buffer or the render clock.
  void complete_migration(net::HostId next, std::uint64_t session_id,
                          std::uint32_t start_index);
  void handle_control(const net::ReliableEndpoint::Message& m);
  void handle_data(const net::Datagram& p);
  /// Terminal decode: parse serialized packet bytes (dropping malformed
  /// input) and feed the demuxer. The single point where data-plane bytes
  /// are read out of their shared buffer.
  void ingest_bytes(const net::Payload& bytes);
  /// Push one ASF packet through the demuxer and the buffering state machine.
  void ingest(const media::asf::DataPacket& pkt);
  /// Drain the reordering buffer's contiguous prefix into ingest().
  void drain_reorder();
  /// NACK every missing index in [first, last) with attempts remaining.
  void request_repair(std::uint32_t first, std::uint32_t last);
  /// Arm the give-up/re-NACK timer for the current head-of-line hole.
  void arm_hole_timer();
  /// Handle end-of-stream, deferring while repairs are still outstanding.
  void handle_eos();
  void on_described(std::span<const std::byte> header_bytes);
  void send_play(net::SimDuration from);
  void start_clock_sync_loop();
  void run_clock_sync();
  void maybe_start_rendering();
  void arm_render_timer();
  void render_due();
  void execute_scripts_upto(net::SimDuration pos);
  void start_prefetch(const std::string& url);
  void show_slide(const std::string& url, net::SimDuration at);
  /// Single funnel for slide visibility: records, measures, notifies.
  void record_slide(SlideEvent ev);
  void note_render_for_interactions(net::SimTime t);
  net::SimTime local_now() const;
  /// Convert a local-clock deadline into a simulator (true-time) instant.
  net::SimTime true_deadline(net::SimTime local) const;
  net::SimDuration effective_preroll() const;
  void restart_from_top(net::SimDuration target);  // OCPN/XOCPN fallback
  /// Drop all per-session receive state (buffer, scripts, demux bookkeeping).
  void reset_session_state();
  /// Tell the serving site this session is over (kStop / kLeaveLive), once.
  void send_session_stop();
  /// Transition to kFinished and cancel all periodic timers.
  void enter_finished();
  /// True-time instant at which the unit with presentation time \p pts is due.
  net::SimTime unit_due(net::SimDuration pts) const;

  net::Transport& net_;
  net::HostId host_;
  PlayerConfig cfg_;
  media::DrmSystem* drm_;
  net::ReliableEndpoint ctl_;
  net::DatagramSocket data_;
  net::RpcClient web_;

  State state_{State::kIdle};
  net::HostId server_{0};
  SiteSelector* selector_{nullptr};
  std::string content_;
  std::uint64_t session_{0};
  bool live_{false};
  media::asf::Header header_;
  std::unique_ptr<media::asf::Demuxer> demux_;
  std::optional<media::License> license_;
  net::ChannelId channel_{0};

  // Render clock: media pts `base_pts_` maps to local instant `epoch_local_`.
  net::SimTime epoch_local_{};
  net::SimDuration base_pts_{};
  net::SimDuration paused_pos_{};
  double rate_{1.0};
  std::multimap<std::int64_t, BufferedUnit> buffer_;  // pts -> unit
  std::map<std::int64_t, std::vector<media::asf::ScriptCommand>> scripts_;
  std::optional<media::asf::ScriptCommand> pending_slide_;
  /// Prefetch bookkeeping: url -> completion instant (nullopt = in flight).
  std::unordered_map<std::string, std::optional<net::SimTime>> prefetched_;
  /// Slides whose flip time passed while their prefetch was still in flight.
  std::unordered_map<std::string, std::pair<net::SimDuration, net::SimTime>>
      awaiting_display_;
  net::SimDuration discard_below_{-1};  ///< drop units below this pts (seek)
  bool expected_seq_reset_{true};
  /// Repair bookkeeping: highest file-packet index seen and the set already
  /// received (dedup for repaired packets) / already NACKed.
  std::int64_t highest_index_{-1};
  std::unordered_set<std::uint32_t> received_index_;
  std::unordered_map<std::uint32_t, std::uint8_t> nack_attempts_;
  std::int64_t repair_total_{-1};  ///< file packet count (from EOS)
  int eos_deferrals_{0};
  std::uint32_t stream_epoch_{0};  ///< expected discontinuity counter
  std::uint64_t repairs_requested_{0};
  std::uint64_t repairs_received_{0};
  /// Reordering buffer (repair mode): packets held until holes fill or the
  /// per-hole give-up timer fires, so the demuxer always sees in-order
  /// input. Holds refcounted views of the received datagrams' bodies —
  /// parsing waits until drain, so a held packet costs no byte copy.
  std::map<std::uint32_t, net::Payload> reorder_;
  std::int64_t next_feed_{-1};
  bool eos_received_{false};
  std::optional<net::EventId> render_timer_;
  std::optional<net::EventId> sync_timer_;
  std::optional<net::EventId> failover_timer_;
  std::uint64_t watchdog_last_packets_{0};
  net::SimTime watchdog_stuck_since_{};
  net::SimTime describe_sent_{};
  std::uint64_t failovers_{0};
  std::uint64_t migrations_{0};
  /// Migration handshake state: one RPC in flight at most; the token
  /// invalidates a stale reply after a newer failover superseded it.
  bool migration_inflight_{false};
  std::uint64_t migration_token_{0};
  net::HostId migration_target_{0};
  /// Lazily bound on first migration so migration-free runs publish no
  /// `lod.player.migrations` series (keeps the sim-transport golden stable).
  obs::Counter m_migrations_;
  std::function<std::vector<std::byte>()> image_provider_;
  /// Set by restore_session_trace: the next begin_session_trace keeps the
  /// adopted identity instead of minting a fresh root.
  bool adopted_trace_{false};
  /// Highest file-packet index ever ingested this epoch (unlike
  /// highest_index_, which only tracks repair-mode gap detection) — the
  /// migration handshake resumes the new replica at max_index_seen_ + 1.
  std::int64_t max_index_seen_{-1};
  std::optional<net::SimTime> waiting_since_;  ///< in a stall since then
  net::SimTime play_issued_{};
  net::SimDuration startup_delay_{-1};

  std::vector<RenderEvent> rendered_;
  std::vector<SlideEvent> slides_;
  std::vector<AnnotationEvent> annotations_;
  std::vector<StallEvent> stalls_;
  std::vector<InteractionRecord> interactions_;
  PlayerObserver* observer_{nullptr};
  obs::TraceSink* trace_{nullptr};
  /// Causal tracing: one trace per user-facing session, rooted at a
  /// "player.session" span; the context rides the control protocol so the
  /// serving site's spans link under ours. Invalid (all no-op) when the
  /// sink is disabled at open time.
  obs::TraceContext session_ctx_;
  std::uint64_t session_span_{0};   ///< "player.session" root span
  std::uint64_t describe_span_{0};  ///< open_to -> kDescribeOk
  std::uint64_t startup_span_{0};   ///< kPlayIssued -> rendering starts
  std::uint64_t failover_span_{0};  ///< do_failover -> rendering resumes
  obs::Counter m_packets_received_;
  obs::Counter m_units_rendered_;
  obs::Counter m_units_lost_;
  obs::Counter m_stalls_;
  obs::Counter m_slides_shown_;
  obs::Counter m_repairs_requested_;
  obs::Counter m_failovers_;
  obs::Histogram m_startup_us_;
  obs::Histogram m_stall_us_;
  obs::Histogram m_slide_fetch_us_;
  /// Per-unit (true render instant - pts): the cross-host spread of this
  /// series is the distributed-presentation skew the C1 bench measures.
  obs::Histogram m_render_offset_us_;
  bool render_start_pending_{false};
  std::uint64_t packets_received_{0};
  std::uint64_t units_lost_{0};
  std::uint64_t last_seq_{0};
  bool drm_blocked_{false};
  net::SimDuration last_correction_{};
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace lod::streaming
