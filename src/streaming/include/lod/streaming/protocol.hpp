#pragma once

#include <cstdint>

#include "lod/net/bytes.hpp"
#include "lod/net/transport_base.hpp"
#include "lod/obs/trace.hpp"

/// \file protocol.hpp
/// Wire protocol between streaming server and players.
///
/// Control messages (RTSP-in-spirit: DESCRIBE / PLAY / PAUSE / SEEK / STOP,
/// plus a two-timestamp TIMESYNC used by the extended model's clock
/// synchronization) travel over the reliable endpoint. Media data packets
/// travel over datagrams — late media is dead media, retransmission would
/// only add delay.
///
/// Causal trace context (trace_id u64 + parent_span_id u64) piggybacks at
/// the TAIL of kDescribe and kPlay payloads (and of the edge tier's RPC
/// bodies). Readers take it with `read_trace_context` only when bytes
/// remain, so payloads from pre-span senders still parse.

namespace lod::streaming::proto {

/// Control message tags (client -> server unless noted).
enum class Ctl : std::uint8_t {
  kDescribe = 1,     ///< name -> kDescribeOk{header bytes} | kError
  kPlay = 2,         ///< name, from_us, data_port, channel -> kPlayOk{session}
  kPause = 3,        ///< session
  kResume = 4,       ///< session
  kSeek = 5,         ///< session, to_us
  kStop = 6,         ///< session
  kTimeSync = 7,     ///< client_local_us -> kTimeSyncReply
  kJoinLive = 8,     ///< name, data_port -> kPlayOk{session} (broadcast join)
  kLeaveLive = 9,    ///< session
  kSetRate = 10,     ///< session, rate_permille, channel (speed control)
  kRepair = 11,      ///< session, count, packet indices (selective NACK)
  // server -> client:
  kDescribeOk = 64,
  kPlayOk = 65,
  kTimeSyncReply = 66,  ///< echo client_local_us + server_local_us
  kError = 67,
  kEndOfStream = 68,    ///< session: all packets sent
};

/// Fixed well-known ports.
inline constexpr net::Port kControlPort = 554;   // homage to RTSP
inline constexpr net::Port kLicensePort = 443;   // DRM license RPC
inline constexpr net::Port kWebPort = 80;        // slide/web server RPC

/// Per-datagram data framing:
/// [magic u32][session u64][epoch u32][seq u64][packet_index u32][blob].
/// `epoch` counts stream discontinuities (seeks) within a session, so a
/// client can drop stragglers from before the jump; `seq` is the
/// per-session transmission counter (gap detection); `packet_index`
/// identifies the file packet (repair requests + dedup — a repaired packet
/// arrives with a fresh seq but the same index).
inline constexpr std::uint32_t kDataMagic = 0x4c4f4444;  // "LODD"

/// Live session migration (LODR RPC `/edge/migrate`, served by replicas at
/// `control_port + kMigratePortOffset`). A player abandoning a dead site
/// freezes the session, ships its state image to the selector's next pick,
/// and resumes against the adopted session — no re-DESCRIBE, no replayed
/// media. Request body:
///   [magic u32][version u16][content str]
///   [client_host u32][client_ctl_port u16][client_data_port u16]
///   [resume_index u32 (u32::max = derive from position)]
///   [position_us i64][stream_epoch u32][rate f64][paused u8]
///   [trace_id u64][parent_span u64][state_image blob]
/// Reply (status 200): [session_id u64][start_index u32]. A replica without
/// the content meta in hand answers 503 (adoption is synchronous) and the
/// player falls back to the describe path, which knows how to park.
inline constexpr net::Port kMigratePortOffset = 3;
inline constexpr std::uint32_t kMigrateMagic = 0x4c4d4947;  // "LMIG"
inline constexpr std::uint16_t kMigrateVersion = 1;

/// Read the optional trailing trace context. Returns an invalid (all-zero)
/// context when the sender predates span propagation or had tracing off.
inline obs::TraceContext read_trace_context(net::ByteReader& r) {
  obs::TraceContext ctx;
  if (r.remaining() >= 16) {
    ctx.trace_id = r.u64();
    ctx.parent_span_id = r.u64();
  }
  return ctx;
}

/// Append a trace context at the tail of an outgoing payload.
inline void write_trace_context(net::ByteWriter& w,
                                const obs::TraceContext& ctx) {
  w.u64(ctx.trace_id);
  w.u64(ctx.parent_span_id);
}

}  // namespace lod::streaming::proto
