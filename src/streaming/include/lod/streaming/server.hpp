#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/media/asf.hpp"
#include "lod/net/transport.hpp"
#include "lod/streaming/protocol.hpp"

/// \file server.hpp
/// The Windows-Media-Services stand-in: a streaming server that serves
/// stored ASF files on demand (unicast, paced by each packet's send time,
/// with pause/seek per session) and relays live ASF streams to every joined
/// subscriber ("broadcast ... in real time", §2.5).
///
/// Measurement goes through the simulation's `obs::MetricsRegistry`
/// (`lod.server.*` series) — `metrics()` is the read-side view. The
/// `SessionStats` value type is materialized from the registry on demand by
/// `ServerMetrics::session`.

namespace lod::streaming {

/// Per-session counters, inspectable by tests and benches.
///
/// Compatibility view: the numbers now live in the metrics registry
/// (`lod.server.session.*{host,session}`); this struct is materialized on
/// demand by `StreamingServer::session_stats` / `ServerMetrics::session`.
struct SessionStats {
  std::uint64_t packets_sent{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t seeks{0};
  std::uint64_t pauses{0};
  std::uint64_t repairs{0};  ///< packets resent on client NACKs
};

/// Aggregate server configuration (mirrors `PlayerConfig`): every tunable
/// in one struct, validated in one place.
struct ServerConfig {
  /// Control port bound at construction (data rides on control_port + 1).
  net::Port control_port{proto::kControlPort};

  /// Fast-start burst rate, as a multiple of the content bit-rate. The
  /// server sends the first preroll's worth of packets at this rate instead
  /// of instantaneously so drop-tail queues survive the burst; the A4
  /// ablation bench sweeps it. Values below 1.0 clamp to 1.0 (slower than
  /// real time would mean the session can never keep up).
  double fast_start_multiplier{4.0};

  /// Real-backend listeners (the TCP control plane serving HTTP metrics and
  /// length-prefixed RPC) bind this address. The simulated backend has no
  /// addresses and ignores it; it is still validated so a config is legal
  /// on every backend. Dotted-quad IPv4 only.
  std::string bind_address{"0.0.0.0"};

  /// listen(2) backlog for the TCP control plane. Must be positive.
  int listen_backlog{64};

  /// Normalized copy with every tunable forced into its legal range.
  /// Structural fields cannot be fixed up, only rejected: throws
  /// std::invalid_argument for control_port 0 (unbindable) or 65535 (the
  /// data socket rides on control_port + 1, which would overflow), for a
  /// malformed `bind_address`, and for a non-positive `listen_backlog`.
  ServerConfig validated() const {
    if (control_port == 0) {
      throw std::invalid_argument("ServerConfig: control_port must be nonzero");
    }
    if (control_port == 65535) {
      throw std::invalid_argument(
          "ServerConfig: control_port 65535 leaves no room for the data port");
    }
    if (!net::is_valid_ipv4(bind_address)) {
      throw std::invalid_argument("ServerConfig: bind_address '" +
                                  bind_address +
                                  "' is not a dotted-quad IPv4 address");
    }
    if (listen_backlog <= 0) {
      throw std::invalid_argument(
          "ServerConfig: listen_backlog must be positive");
    }
    ServerConfig c = *this;
    if (!(c.fast_start_multiplier >= 1.0)) c.fast_start_multiplier = 1.0;
    return c;
  }
};

class StreamingServer;

/// Read-side view over the server's registry series. Values are live (not a
/// snapshot); use `snapshot()` + `Snapshot::since` for deltas.
class ServerMetrics {
 public:
  std::uint64_t packets_sent() const;
  std::uint64_t bytes_sent() const;
  std::uint64_t repairs() const;
  std::uint64_t sessions_opened() const;
  std::int64_t active_sessions() const;
  /// Per-session counters; nullopt for unknown sessions.
  std::optional<SessionStats> session(std::uint64_t id) const;
  /// Whole-simulation snapshot (every layer's series, not just the server).
  obs::Snapshot snapshot() const;

 private:
  friend class StreamingServer;
  explicit ServerMetrics(const StreamingServer* s) : server_(s) {}
  const StreamingServer* server_;
};

/// The streaming server on one host.
class StreamingServer {
 public:
  /// Binds `cfg.control_port` on \p host. \p cfg is validated on entry.
  StreamingServer(net::Transport& net, net::HostId host, ServerConfig cfg = {});

  // --- content ---------------------------------------------------------------

  /// Publish a stored file under \p name (overwrites an existing entry).
  void publish(std::string name, media::asf::File file);
  bool has(const std::string& name) const { return files_.count(name) > 0; }

  /// The published file, or nullptr. The edge tier's origin gateway serves
  /// segments straight out of this; the pointer is stable until the name is
  /// republished.
  const media::asf::File* stored(const std::string& name) const {
    auto it = files_.find(name);
    return it == files_.end() ? nullptr : &it->second;
  }

  /// Open a live channel under \p name; returns a sink to feed encoder
  /// packets into. Subscribers joined via kJoinLive receive every packet
  /// fed after their join. Feeding a finished channel is a no-op.
  std::function<void(const media::asf::DataPacket&)> open_live_channel(
      std::string name, media::asf::Header header);
  /// Mark a live channel finished (subscribers get kEndOfStream).
  void close_live_channel(const std::string& name);

  // --- configuration ---------------------------------------------------------

  /// Apply new runtime tunables (validated). The control port is fixed at
  /// construction; a differing `cfg.control_port` is ignored.
  void configure(ServerConfig cfg);
  const ServerConfig& config() const { return config_; }

  double fast_start_multiplier() const {
    return config_.fast_start_multiplier;
  }

  // --- introspection ---------------------------------------------------------

  /// Registry-backed measurement view (`lod.server.*`).
  ServerMetrics metrics() const { return ServerMetrics(this); }

  std::size_t active_sessions() const;

  net::HostId host() const { return host_; }

 private:
  friend class ServerMetrics;

  /// Materializes `lod.server.session.*` series into a `SessionStats`;
  /// surfaced publicly through `ServerMetrics::session`.
  std::optional<SessionStats> session_stats(std::uint64_t session) const;

  /// Registry handles for one session's `lod.server.session.*` series.
  struct SessionCounters {
    obs::Counter packets_sent;
    obs::Counter bytes_sent;
    obs::Counter seeks;
    obs::Counter pauses;
    obs::Counter repairs;
  };

  struct Session {
    std::uint64_t id{};
    net::HostId client{};
    net::Port client_ctl_port{};
    net::Port data_port{};
    net::ChannelId channel{0};
    const media::asf::File* file{nullptr};  // null => live session
    std::string live_name;                  // for live sessions
    std::size_t next_packet{0};
    std::uint64_t next_seq{0};
    bool paused{false};
    bool stopped{false};
    double rate{1.0};  ///< playback speed (pacing divisor)
    std::uint32_t epoch{0};  ///< stream discontinuity counter (seeks)
    /// send_time of packet[next_packet] maps to this wall instant.
    net::SimTime pace_epoch{};
    net::SimTime last_send{};  ///< burst-rate limiter state
    net::SimDuration pace_offset{};  ///< media send-time at pace_epoch
    std::optional<net::EventId> timer;
    SessionCounters stats;
  };
  struct LiveChannel {
    media::asf::Header header;
    std::vector<std::uint64_t> subscribers;
    bool open{true};
  };

  void handle_control(const net::ReliableEndpoint::Message& m);
  void reply(const Session& s, std::vector<std::byte> payload);
  void reply_to(net::HostId h, net::Port p, std::vector<std::byte> payload);
  void schedule_next(Session& s);
  /// Send one already-serialized data packet: a small per-send frame header
  /// plus \p bytes as a shared body attachment — no per-session byte copy.
  void send_packet(Session& s, const net::Payload& bytes,
                   std::uint32_t packet_index);
  /// Serialized form of file packet \p idx, encoded once and shared by every
  /// session (and every repair resend) of that file.
  const net::Payload& cached_packet(const media::asf::File* f,
                                    std::size_t idx);
  Session* find_session(std::uint64_t id);
  SessionCounters make_session_counters(std::uint64_t id);
  void end_session(Session& s);

  net::Transport& net_;
  net::HostId host_;
  ServerConfig config_;
  net::ReliableEndpoint ctl_;
  net::DatagramSocket data_;
  obs::TraceSink* trace_{nullptr};
  obs::Counter packets_sent_;
  obs::Counter bytes_sent_;
  obs::Counter repairs_;
  obs::Counter sessions_opened_;
  obs::Gauge active_sessions_gauge_;
  std::unordered_map<std::string, media::asf::File> files_;
  /// Lazily-filled serialized packets, keyed by stored file. unordered_map
  /// nodes are address-stable, so the File* key survives republishing the
  /// same name (publish() drops the stale cache entry first).
  std::unordered_map<const media::asf::File*, std::vector<net::Payload>>
      packet_cache_;
  std::unordered_map<std::string, LiveChannel> live_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_{1};
};

}  // namespace lod::streaming
