#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/media/asf.hpp"
#include "lod/net/transport.hpp"
#include "lod/streaming/protocol.hpp"

/// \file server.hpp
/// The Windows-Media-Services stand-in: a streaming server that serves
/// stored ASF files on demand (unicast, paced by each packet's send time,
/// with pause/seek per session) and relays live ASF streams to every joined
/// subscriber ("broadcast ... in real time", §2.5).

namespace lod::streaming {

/// Per-session counters, inspectable by tests and benches.
struct SessionStats {
  std::uint64_t packets_sent{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t seeks{0};
  std::uint64_t pauses{0};
  std::uint64_t repairs{0};  ///< packets resent on client NACKs
};

/// The streaming server on one host.
class StreamingServer {
 public:
  /// Binds the control port on \p host.
  StreamingServer(net::Network& net, net::HostId host,
                  net::Port control_port = proto::kControlPort);

  // --- content ---------------------------------------------------------------

  /// Publish a stored file under \p name (overwrites an existing entry).
  void publish(std::string name, media::asf::File file);
  bool has(const std::string& name) const { return files_.count(name) > 0; }

  /// Open a live channel under \p name; returns a sink to feed encoder
  /// packets into. Subscribers joined via kJoinLive receive every packet
  /// fed after their join. Feeding a finished channel is a no-op.
  std::function<void(const media::asf::DataPacket&)> open_live_channel(
      std::string name, media::asf::Header header);
  /// Mark a live channel finished (subscribers get kEndOfStream).
  void close_live_channel(const std::string& name);

  // --- introspection -----------------------------------------------------------

  /// Fast-start burst rate, as a multiple of the content bit-rate (default
  /// 4x). The server sends the first preroll's worth of packets at this rate
  /// instead of instantaneously so drop-tail queues survive the burst; the
  /// A4 ablation bench sweeps it.
  void set_fast_start_multiplier(double m) { fast_start_ = m < 1.0 ? 1.0 : m; }
  double fast_start_multiplier() const { return fast_start_; }

  std::size_t active_sessions() const;
  std::optional<SessionStats> session_stats(std::uint64_t session) const;
  std::uint64_t total_packets_sent() const { return total_packets_; }

  net::HostId host() const { return host_; }

 private:
  struct Session {
    std::uint64_t id{};
    net::HostId client{};
    net::Port client_ctl_port{};
    net::Port data_port{};
    net::ChannelId channel{0};
    const media::asf::File* file{nullptr};  // null => live session
    std::string live_name;                  // for live sessions
    std::size_t next_packet{0};
    std::uint64_t next_seq{0};
    bool paused{false};
    bool stopped{false};
    double rate{1.0};  ///< playback speed (pacing divisor)
    std::uint32_t epoch{0};  ///< stream discontinuity counter (seeks)
    /// send_time of packet[next_packet] maps to this wall instant.
    net::SimTime pace_epoch{};
    net::SimTime last_send{};  ///< burst-rate limiter state
    net::SimDuration pace_offset{};  ///< media send-time at pace_epoch
    std::optional<net::EventId> timer;
    SessionStats stats;
  };
  struct LiveChannel {
    media::asf::Header header;
    std::vector<std::uint64_t> subscribers;
    bool open{true};
  };

  void handle_control(const net::ReliableEndpoint::Message& m);
  void reply(const Session& s, std::vector<std::byte> payload);
  void reply_to(net::HostId h, net::Port p, std::vector<std::byte> payload);
  void schedule_next(Session& s);
  void send_packet(Session& s, const media::asf::DataPacket& pkt,
                   std::uint32_t packet_index);
  Session* find_session(std::uint64_t id);

  net::Network& net_;
  net::HostId host_;
  net::ReliableEndpoint ctl_;
  net::DatagramSocket data_;
  std::unordered_map<std::string, media::asf::File> files_;
  std::unordered_map<std::string, LiveChannel> live_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_{1};
  std::uint64_t total_packets_{0};
  double fast_start_{4.0};
};

}  // namespace lod::streaming
