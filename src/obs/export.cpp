#include "lod/obs/export.hpp"

#include <map>
#include <vector>

#include "lod/obs/json.hpp"

namespace lod::obs {

namespace {

std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_prom_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

/// `{k="v",...}` with an optional extra label (the histogram `le`).
void append_prom_labels(std::string& out, const Labels& labels,
                        std::string_view extra_key = {},
                        std::string_view extra_val = {}) {
  if (labels.empty() && extra_key.empty()) return;
  out += '{';
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_name(l.first);
    out += "=\"";
    append_prom_escaped(out, l.second);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_prom_escaped(out, extra_val);
    out += '"';
  }
  out += '}';
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Entries grouped by metric name in name order (map key order interleaves
/// `name{...}` with longer names sharing the prefix, so re-group).
std::map<std::string, std::vector<const Snapshot::Entry*>> by_name(
    const Snapshot& snap) {
  std::map<std::string, std::vector<const Snapshot::Entry*>> groups;
  for (const auto& [key, e] : snap.entries()) {
    groups[e.name].push_back(&e);
  }
  return groups;
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, entries] : by_name(snap)) {
    const std::string pname = prom_name(name);
    out += "# TYPE ";
    out += pname;
    out += ' ';
    out += kind_name(entries.front()->kind);
    out += '\n';
    for (const Snapshot::Entry* e : entries) {
      switch (e->kind) {
        case MetricKind::kCounter:
          out += pname;
          append_prom_labels(out, e->labels);
          out += ' ';
          out += std::to_string(e->counter);
          out += '\n';
          break;
        case MetricKind::kGauge:
          out += pname;
          append_prom_labels(out, e->labels);
          out += ' ';
          out += std::to_string(e->gauge);
          out += '\n';
          break;
        case MetricKind::kHistogram: {
          const HistogramData& h = e->hist;
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i < h.counts.size()) cum += h.counts[i];
            out += pname;
            out += "_bucket";
            append_prom_labels(out, e->labels, "le",
                               std::to_string(h.bounds[i]));
            out += ' ';
            out += std::to_string(cum);
            out += '\n';
          }
          out += pname;
          out += "_bucket";
          append_prom_labels(out, e->labels, "le", "+Inf");
          out += ' ';
          out += std::to_string(h.count);
          out += '\n';
          out += pname;
          out += "_sum";
          append_prom_labels(out, e->labels);
          out += ' ';
          out += std::to_string(h.sum);
          out += '\n';
          out += pname;
          out += "_count";
          append_prom_labels(out, e->labels);
          out += ' ';
          out += std::to_string(h.count);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{\"series\":[";
  bool first = true;
  for (const auto& [name, entries] : by_name(snap)) {
    for (const Snapshot::Entry* e : entries) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\":\"";
      append_json_escaped(out, e->name);
      out += "\",\"kind\":\"";
      out += kind_name(e->kind);
      out += "\",\"labels\":{";
      for (std::size_t i = 0; i < e->labels.size(); ++i) {
        if (i) out += ',';
        out += '"';
        append_json_escaped(out, e->labels[i].first);
        out += "\":\"";
        append_json_escaped(out, e->labels[i].second);
        out += '"';
      }
      out += '}';
      switch (e->kind) {
        case MetricKind::kCounter:
          out += ",\"value\":";
          out += std::to_string(e->counter);
          break;
        case MetricKind::kGauge:
          out += ",\"value\":";
          out += std::to_string(e->gauge);
          break;
        case MetricKind::kHistogram: {
          const HistogramData& h = e->hist;
          out += ",\"count\":";
          out += std::to_string(h.count);
          out += ",\"sum\":";
          out += std::to_string(h.sum);
          if (h.count > 0) {
            out += ",\"min\":";
            out += std::to_string(h.min);
            out += ",\"max\":";
            out += std::to_string(h.max);
          }
          out += ",\"bounds\":[";
          for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i) out += ',';
            out += std::to_string(h.bounds[i]);
          }
          out += "],\"counts\":[";
          for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i) out += ',';
            out += std::to_string(h.counts[i]);
          }
          out += ']';
          break;
        }
      }
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace lod::obs
