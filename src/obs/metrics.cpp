#include "lod/obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace lod::obs {

void series_key_sorted(std::string& out, std::string_view name,
                       const Labels& labels) {
  out.clear();
  std::size_t need = name.size();
  if (!labels.empty()) {
    need += 2;  // '{' '}'
    for (const Label& l : labels) {
      need += l.first.size() + l.second.size() + 2;  // '=' ','
    }
  }
  out.reserve(need);
  out.append(name);
  if (!labels.empty()) {
    out += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out += ',';
      out += labels[i].first;
      out += '=';
      out += labels[i].second;
    }
    out += '}';
  }
}

std::string series_key(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key;
  series_key_sorted(key, name, labels);
  return key;
}

void HistogramData::observe(std::int64_t v) {
  // Lower-bound over the sorted bounds picks the first bucket whose upper
  // bound admits v; past-the-end is the +inf overflow slot.
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds.begin());
  if (counts.size() != bounds.size() + 1) counts.assign(bounds.size() + 1, 0);
  ++counts[idx];
  ++count;
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
}

std::int64_t HistogramData::quantile_bound(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The target is an ORDER STATISTIC (1-based rank), so it must stay inside
  // [1, count]: a raw `q*count + 0.5` rounds to 0 for q -> 0 (or tiny
  // counts), and `seen >= 0` holds at the very first bucket, reporting
  // bounds[0] even when every sample sits in the overflow slot.
  auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5);
  target = std::clamp<std::uint64_t>(target, 1, count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) {
      return i < bounds.size() ? bounds[i] : max;
    }
  }
  return max;
}

const std::vector<std::int64_t>& MetricsRegistry::latency_buckets_us() {
  static const std::vector<std::int64_t> kBuckets = {
      1'000,      2'000,      5'000,      10'000,     20'000,
      50'000,     100'000,    200'000,    500'000,    1'000'000,
      2'000'000,  5'000'000,  10'000'000, 30'000'000, 60'000'000};
  return kBuckets;
}

detail::Series* MetricsRegistry::resolve(MetricKind kind,
                                         std::string_view name,
                                         Labels labels) {
  // One sort, one key build into the reused buffer, one hash probe. The
  // heterogeneous find means a repeat lookup allocates nothing at all.
  std::sort(labels.begin(), labels.end());
  series_key_sorted(key_buf_, name, labels);
  auto it = series_.find(std::string_view(key_buf_));
  if (it != series_.end()) {
    if (it->second->kind != kind) {
      throw std::logic_error("metric '" + key_buf_ +
                             "' re-registered with a different kind");
    }
    return it->second.get();
  }
  auto s = std::make_unique<detail::Series>();
  s->kind = kind;
  s->name = std::string(name);
  s->labels = std::move(labels);
  detail::Series* raw = s.get();
  series_.emplace(key_buf_, std::move(s));
  return raw;
}

Counter MetricsRegistry::counter(std::string_view name, Labels labels) {
  return Counter(resolve(MetricKind::kCounter, name, std::move(labels)));
}

Gauge MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return Gauge(resolve(MetricKind::kGauge, name, std::move(labels)));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<std::int64_t> bounds,
                                     Labels labels) {
  detail::Series* s =
      resolve(MetricKind::kHistogram, name, std::move(labels));
  if (s->hist.bounds.empty()) {
    s->hist.bounds = bounds.empty() ? latency_buckets_us() : std::move(bounds);
    s->hist.counts.assign(s->hist.bounds.size() + 1, 0);
  }
  return Histogram(s);
}

std::size_t MetricsRegistry::retire(std::string_view name_prefix,
                                    const Labels& labels) {
  std::size_t n = 0;
  for (auto it = series_.begin(); it != series_.end();) {
    detail::Series& s = *it->second;
    const bool name_match =
        s.name.size() >= name_prefix.size() &&
        std::string_view(s.name).substr(0, name_prefix.size()) == name_prefix;
    bool labels_match = name_match;
    if (labels_match) {
      for (const Label& want : labels) {
        if (std::find(s.labels.begin(), s.labels.end(), want) ==
            s.labels.end()) {
          labels_match = false;
          break;
        }
      }
    }
    if (labels_match) {
      retired_.push_back(std::move(it->second));
      it = series_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [key, s] : series_) {
    Snapshot::Entry e;
    e.kind = s->kind;
    e.name = s->name;
    e.labels = s->labels;
    e.counter = s->counter;
    e.gauge = s->gauge;
    e.hist = s->hist;
    snap.entries_.emplace(key, std::move(e));
  }
  return snap;
}

std::uint64_t Snapshot::counter(std::string_view name, Labels labels) const {
  const auto it = entries_.find(series_key(name, std::move(labels)));
  return it == entries_.end() ? 0 : it->second.counter;
}

std::int64_t Snapshot::gauge(std::string_view name, Labels labels) const {
  const auto it = entries_.find(series_key(name, std::move(labels)));
  return it == entries_.end() ? 0 : it->second.gauge;
}

const HistogramData* Snapshot::histogram(std::string_view name,
                                         Labels labels) const {
  const auto it = entries_.find(series_key(name, std::move(labels)));
  if (it == entries_.end() || it->second.kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return &it->second.hist;
}

std::uint64_t Snapshot::total(std::string_view name) const {
  std::uint64_t sum = 0;
  for (const auto& [key, e] : entries_) {
    if (e.name == name && e.kind == MetricKind::kCounter) sum += e.counter;
  }
  return sum;
}

HistogramData Snapshot::merged_histogram(std::string_view name) const {
  HistogramData out;
  for (const auto& [key, e] : entries_) {
    if (e.name != name || e.kind != MetricKind::kHistogram) continue;
    const HistogramData& h = e.hist;
    if (h.count == 0) continue;
    if (out.count == 0) {
      out = h;
      continue;
    }
    if (out.bounds == h.bounds) {
      for (std::size_t i = 0; i < out.counts.size(); ++i) {
        out.counts[i] += h.counts[i];
      }
    } else {
      // Incompatible bucket layouts: aggregate moments only.
      out.counts.clear();
      out.bounds.clear();
    }
    out.count += h.count;
    out.sum += h.sum;
    out.min = std::min(out.min, h.min);
    out.max = std::max(out.max, h.max);
  }
  return out;
}

Snapshot Snapshot::merged(
    const std::vector<std::pair<std::string, Snapshot>>& shards) {
  Snapshot out;
  for (const auto& [shard_label, snap] : shards) {
    for (const auto& [key, e] : snap.entries_) {
      auto [it, inserted] = out.entries_.emplace(key, e);
      if (!inserted) {
        Entry& agg = it->second;
        if (agg.kind != e.kind) {
          throw std::logic_error("Snapshot::merged: series '" + key +
                                 "' has conflicting kinds across shards");
        }
        switch (e.kind) {
          case MetricKind::kCounter:
            agg.counter += e.counter;
            break;
          case MetricKind::kGauge:
            agg.gauge = e.gauge;  // last writer wins (shard order)
            break;
          case MetricKind::kHistogram: {
            if (e.hist.count == 0) break;
            if (agg.hist.count == 0) {
              agg.hist = e.hist;
              break;
            }
            if (agg.hist.bounds == e.hist.bounds) {
              for (std::size_t i = 0; i < agg.hist.counts.size(); ++i) {
                agg.hist.counts[i] += e.hist.counts[i];
              }
            } else {
              // Incompatible layouts: aggregate moments only.
              agg.hist.bounds.clear();
              agg.hist.counts.clear();
            }
            agg.hist.count += e.hist.count;
            agg.hist.sum += e.hist.sum;
            agg.hist.min = std::min(agg.hist.min, e.hist.min);
            agg.hist.max = std::max(agg.hist.max, e.hist.max);
            break;
          }
        }
      }
      // Gauges cannot meaningfully aggregate, so each shard's value is also
      // kept verbatim under an appended shard label.
      if (e.kind == MetricKind::kGauge) {
        Entry per_shard = e;
        per_shard.labels.emplace_back("shard", shard_label);
        out.entries_.insert_or_assign(
            series_key(per_shard.name, per_shard.labels),
            std::move(per_shard));
      }
    }
  }
  return out;
}

Snapshot Snapshot::since(const Snapshot& earlier) const {
  Snapshot delta;
  for (const auto& [key, e] : entries_) {
    Entry d = e;
    const auto it = earlier.entries_.find(key);
    if (it != earlier.entries_.end()) {
      const Entry& prev = it->second;
      if (d.kind == MetricKind::kCounter) {
        // A total below the baseline means the series was retired and
        // re-registered between snapshots: treat it as a counter reset and
        // keep the current total whole (increments since the restart).
        d.counter =
            d.counter >= prev.counter ? d.counter - prev.counter : d.counter;
      } else if (d.kind == MetricKind::kHistogram &&
                 d.hist.bounds == prev.hist.bounds &&
                 d.hist.count >= prev.hist.count) {
        // Same reset rule as the counter branch: on a reset the current
        // tallies are kept whole (the bounds/count guard above routes the
        // reset case here, skipping subtraction entirely).
        for (std::size_t i = 0;
             i < d.hist.counts.size() && i < prev.hist.counts.size(); ++i) {
          const std::uint64_t p = prev.hist.counts[i];
          d.hist.counts[i] = d.hist.counts[i] >= p ? d.hist.counts[i] - p : 0;
        }
        d.hist.count -= prev.hist.count;
        d.hist.sum -= prev.hist.sum;
        // min/max are not recoverable for a window; leave the cumulative
        // values (documented in OBSERVABILITY.md).
      }
    }
    delta.entries_.emplace(key, std::move(d));
  }
  return delta;
}

}  // namespace lod::obs
