#include "lod/obs/rollup.hpp"

#include <algorithm>

namespace lod::obs {

RollupStore::RollupStore() : RollupStore(Config()) {}

void RollupStore::roll(const Snapshot& snap, TimeUs now) {
  if (!primed_) {
    primed_ = true;
    last_ = snap;
    last_t_ = now;
    return;
  }
  if (now <= last_t_) {
    // Time did not advance: keep the newest snapshot as the baseline so the
    // next real window still diffs against current totals, but retain no
    // zero-width window.
    last_ = snap;
    return;
  }
  Window w;
  w.start = last_t_;
  w.end = now;
  w.delta = snap.since(last_);
  windows_.push_back(std::move(w));
  last_ = snap;
  last_t_ = now;
  const std::size_t cap = cfg_.windows == 0 ? 1 : cfg_.windows;
  while (windows_.size() > cap) windows_.pop_front();
}

RollupStore::Rate RollupStore::rate(std::string_view name,
                                    std::size_t span) const {
  Rate out;
  const std::size_t n = windows_.size();
  const std::size_t take = (span == 0 || span > n) ? n : span;
  for (std::size_t i = n - take; i < n; ++i) {
    const Window& w = windows_[i];
    out.delta += w.delta.total(name);
    out.over_us += w.end - w.start;
  }
  return out;
}

HistogramData RollupStore::merged_histogram(std::string_view name,
                                            std::size_t span) const {
  HistogramData out;
  const std::size_t n = windows_.size();
  const std::size_t take = (span == 0 || span > n) ? n : span;
  for (std::size_t i = n - take; i < n; ++i) {
    const HistogramData h = windows_[i].delta.merged_histogram(name);
    if (h.count == 0) continue;
    if (out.count == 0) {
      out = h;
      continue;
    }
    if (out.bounds == h.bounds) {
      for (std::size_t k = 0; k < out.counts.size(); ++k) {
        out.counts[k] += h.counts[k];
      }
    } else {
      // Incompatible layouts across windows (e.g. a retire/re-register with
      // new bounds mid-history): keep moments only, same as
      // Snapshot::merged_histogram.
      out.counts.clear();
      out.bounds.clear();
    }
    out.count += h.count;
    out.sum += h.sum;
    out.min = std::min(out.min, h.min);
    out.max = std::max(out.max, h.max);
  }
  return out;
}

}  // namespace lod::obs
