#include "lod/obs/debug.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "lod/obs/export.hpp"
#include "lod/obs/json.hpp"

namespace lod::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_labels(std::string& out, const Labels& labels) {
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += '"';
    append_json_escaped(out, labels[i].first);
    out += "\":\"";
    append_json_escaped(out, labels[i].second);
    out += '"';
  }
  out += '}';
}

/// The value part of one series entry (no name/labels), shared by the
/// filtered views so they render like to_json does.
void append_entry_value(std::string& out, const Snapshot::Entry& e) {
  switch (e.kind) {
    case MetricKind::kCounter:
      out += std::to_string(e.counter);
      return;
    case MetricKind::kGauge:
      out += std::to_string(e.gauge);
      return;
    case MetricKind::kHistogram: {
      const HistogramData& h = e.hist;
      out += "{\"count\":";
      out += std::to_string(h.count);
      out += ",\"sum\":";
      out += std::to_string(h.sum);
      if (h.count > 0) {
        out += ",\"min\":";
        out += std::to_string(h.min);
        out += ",\"max\":";
        out += std::to_string(h.max);
        out += ",\"p50\":";
        out += std::to_string(h.quantile_bound(0.50));
        out += ",\"p95\":";
        out += std::to_string(h.quantile_bound(0.95));
        out += ",\"p99\":";
        out += std::to_string(h.quantile_bound(0.99));
      }
      out += '}';
      return;
    }
  }
  out += "null";
}

}  // namespace

std::string debug_vars_json(const Snapshot& snap, const RollupStore* rollup,
                            TimeUs now) {
  std::string out = "{\"t\":";
  out += std::to_string(now);
  if (rollup != nullptr) {
    out += ",\"rollup\":{\"windows\":";
    out += std::to_string(rollup->size());
    out += ",\"window_us\":";
    out += std::to_string(rollup->config().window_us);
    out += ",\"oldest\":";
    out += std::to_string(rollup->oldest_start());
    out += ",\"newest\":";
    out += std::to_string(rollup->newest_end());
    out += '}';

    // Rates for every counter name the snapshot knows, over the retained
    // rollup history; zero-delta names are elided to keep the page small.
    std::set<std::string_view> names;
    for (const auto& [key, e] : snap.entries()) {
      if (e.kind == MetricKind::kCounter) names.insert(e.name);
    }
    out += ",\"rates\":{";
    bool first = true;
    for (const std::string_view name : names) {
      const RollupStore::Rate r = rollup->rate(name);
      if (r.delta == 0) continue;
      out += first ? "\n" : ",\n";
      first = false;
      out += '"';
      append_json_escaped(out, name);
      out += "\":{\"delta\":";
      out += std::to_string(r.delta);
      out += ",\"over_us\":";
      out += std::to_string(r.over_us);
      out += ",\"per_second\":";
      append_double(out, r.per_second());
      out += '}';
    }
    out += '}';
  }
  out += ",\"series\":";
  const std::string full = to_json(snap);
  // to_json returns {"series":[...]} — splice its array out so /debug/vars
  // stays one object. The exporter's shape is covered by goldens; index
  // math on it is safe.
  const auto at = full.find('[');
  out += at == std::string::npos ? "[]" : full.substr(at, full.rfind(']') - at + 1);
  out += "}\n";
  return out;
}

std::string debug_sessions_json(const Snapshot& snap) {
  constexpr std::string_view kPrefix = "lod.server.session.";
  // Group session series by label set; keep the per-host roll-ups flat.
  std::map<std::string, std::vector<const Snapshot::Entry*>> groups;
  std::vector<const Snapshot::Entry*> hosts;
  for (const auto& [key, e] : snap.entries()) {
    if (e.name.rfind(kPrefix, 0) == 0) {
      std::string lkey;
      append_labels(lkey, e.labels);
      groups[lkey].push_back(&e);
    } else if (e.name == "lod.server.active_sessions" ||
               e.name == "lod.server.sessions_opened") {
      hosts.push_back(&e);
    }
  }

  std::string out = "{\"hosts\":[";
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i) out += ',';
    out += "\n{\"name\":\"";
    append_json_escaped(out, hosts[i]->name);
    out += "\",\"labels\":";
    append_labels(out, hosts[i]->labels);
    out += ",\"value\":";
    append_entry_value(out, *hosts[i]);
    out += '}';
  }
  out += "],\"sessions\":[";
  bool first = true;
  for (const auto& [lkey, entries] : groups) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"labels\":";
    out += lkey;
    out += ",\"metrics\":{";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i) out += ',';
      out += '"';
      append_json_escaped(out, entries[i]->name.substr(kPrefix.size()));
      out += "\":";
      append_entry_value(out, *entries[i]);
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

std::string debug_sync_json(const Snapshot& snap) {
  std::string out = "{\"series\":[";
  bool first = true;
  for (const auto& [key, e] : snap.entries()) {
    if (e.name.rfind("lod.sync.", 0) != 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"labels\":";
    append_labels(out, e.labels);
    out += ",\"value\":";
    append_entry_value(out, e);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string span_tree_to_json(const SpanTree& tree) {
  // Self-time attribution, mapped back to node indices (0 without a root).
  std::vector<TimeUs> self(tree.nodes.size(), 0);
  if (tree.root() != nullptr) {
    for (const SpanContribution& c : tree.decompose()) {
      self[c.node] = c.self_us;
    }
  }

  std::string out = "{\"trace_id\":";
  out += std::to_string(tree.trace_id);
  out += ",\"duration_us\":";
  out += std::to_string(tree.duration());
  out += ",\"orphans\":";
  out += std::to_string(tree.orphans.size());
  out += ",\"nodes\":[";
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    const SpanNode& n = tree.nodes[i];
    out += i ? ",\n" : "\n";
    out += "{\"id\":";
    out += std::to_string(n.id);
    out += ",\"parent\":";
    out += std::to_string(n.parent);
    out += ",\"actor\":";
    out += std::to_string(n.actor);
    out += ",\"name\":\"";
    append_json_escaped(out, n.name);
    out += "\",\"begin\":";
    out += std::to_string(n.begin);
    out += ",\"end\":";
    out += std::to_string(n.end);
    out += ",\"closed\":";
    out += n.closed ? "true" : "false";
    out += ",\"self_us\":";
    out += std::to_string(self[i]);
    out += ",\"children\":[";
    for (std::size_t k = 0; k < n.children.size(); ++k) {
      if (k) out += ',';
      out += std::to_string(n.children[k]);
    }
    out += "]}";
  }
  out += "],\"roots\":[";
  for (std::size_t i = 0; i < tree.roots.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(tree.roots[i]);
  }
  out += "],\"critical_path\":[";
  const auto path = tree.root() != nullptr ? tree.critical_path()
                                           : std::vector<std::size_t>{};
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(path[i]);
  }
  out += "]}\n";
  return out;
}

std::string debug_trace_json(const std::vector<TraceEvent>& events,
                             std::uint64_t trace_id) {
  const std::vector<SpanTree> trees = build_span_trees(events);
  if (trace_id == 0) {
    std::string out = "{\"traces\":[";
    for (std::size_t i = 0; i < trees.size(); ++i) {
      const SpanTree& t = trees[i];
      out += i ? ",\n" : "\n";
      out += "{\"trace_id\":";
      out += std::to_string(t.trace_id);
      out += ",\"root\":\"";
      if (t.root() != nullptr) append_json_escaped(out, t.root()->name);
      out += "\",\"spans\":";
      out += std::to_string(t.nodes.size());
      out += ",\"duration_us\":";
      out += std::to_string(t.duration());
      out += '}';
    }
    out += "]}\n";
    return out;
  }
  for (const SpanTree& t : trees) {
    if (t.trace_id == trace_id) return span_tree_to_json(t);
  }
  std::string out = "{\"error\":\"trace not found\",\"trace_id\":";
  out += std::to_string(trace_id);
  out += "}\n";
  return out;
}

std::string debug_flight_jsonl(const FlightRecorder& rec, TimeUs now,
                               std::string_view reason) {
  FlightDump d;
  d.reason = std::string(reason);
  d.t = now;
  d.dropped = rec.dropped();
  std::string body = rec.to_jsonl();
  d.events = static_cast<std::size_t>(
      std::count(body.begin(), body.end(), '\n'));
  return flight_dump_meta(d) + body;
}

}  // namespace lod::obs
