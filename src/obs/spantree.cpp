#include "lod/obs/spantree.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace lod::obs {

const SpanNode* SpanTree::root() const {
  return roots.empty() ? nullptr : &nodes[roots.front()];
}

TimeUs SpanTree::duration() const {
  const SpanNode* r = root();
  return r ? r->end - r->begin : 0;
}

namespace {

/// Indices of nodes[from] and every span reachable from it through
/// `children`, paired with subtree depth (nodes[from] = 0).
std::vector<std::pair<std::size_t, int>> descendants(const SpanTree& tree,
                                                     std::size_t from) {
  std::vector<std::pair<std::size_t, int>> out;
  std::vector<std::pair<std::size_t, int>> stack{{from, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    out.emplace_back(idx, depth);
    for (const std::size_t c : tree.nodes[idx].children) {
      stack.emplace_back(c, depth + 1);
    }
  }
  return out;
}

}  // namespace

std::vector<SpanContribution> SpanTree::decompose() const {
  if (roots.empty()) return {};
  return decompose(roots.front());
}

std::vector<SpanContribution> SpanTree::decompose(std::size_t at) const {
  std::vector<SpanContribution> out;
  if (at >= nodes.size()) return out;
  const TimeUs rb = nodes[at].begin;
  const TimeUs re = nodes[at].end;

  const auto descs = descendants(*this, at);
  std::vector<TimeUs> cuts{rb, re};
  for (const auto& [idx, depth] : descs) {
    const SpanNode& n = nodes[idx];
    cuts.push_back(std::clamp(n.begin, rb, re));
    cuts.push_back(std::clamp(n.end, rb, re));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::unordered_map<std::size_t, TimeUs> self;
  for (const auto& [idx, depth] : descs) self.emplace(idx, 0);

  // Every elementary interval is either fully inside or fully outside each
  // span (its endpoints are cut points), so "deepest covering span" is well
  // defined per interval. The root covers the whole window, so every
  // interval is charged somewhere and the charges sum to the duration.
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const TimeUs x = cuts[i];
    const TimeUs y = cuts[i + 1];
    if (y <= x) continue;
    std::size_t best = at;
    int best_depth = -1;
    TimeUs best_begin = rb;
    for (const auto& [idx, depth] : descs) {
      const SpanNode& n = nodes[idx];
      if (n.begin <= x && n.end >= y) {
        // Deepest wins; among equals the later-starting span (the one the
        // instant is "most recently inside") wins.
        if (depth > best_depth ||
            (depth == best_depth && n.begin > best_begin)) {
          best = idx;
          best_depth = depth;
          best_begin = n.begin;
        }
      }
    }
    self[best] += y - x;
  }

  out.reserve(self.size());
  for (const auto& [idx, us] : self) out.push_back({idx, us});
  std::sort(out.begin(), out.end(), [&](const auto& l, const auto& r2) {
    if (l.self_us != r2.self_us) return l.self_us > r2.self_us;
    return l.node < r2.node;
  });
  return out;
}

std::vector<std::size_t> SpanTree::critical_path() const {
  std::vector<std::size_t> out;
  if (roots.empty()) return out;
  std::size_t at = roots.front();
  out.push_back(at);
  while (!nodes[at].children.empty()) {
    std::size_t next = nodes[at].children.front();
    for (const std::size_t c : nodes[at].children) {
      if (nodes[c].end > nodes[next].end) next = c;
    }
    out.push_back(next);
    at = next;
  }
  return out;
}

std::vector<SpanTree> build_span_trees(const std::vector<TraceEvent>& events) {
  struct Working {
    SpanTree tree;
    std::unordered_map<std::uint64_t, std::size_t> by_id;
    TimeUs last_t{0};
  };
  std::map<std::uint64_t, Working> traces;

  for (const TraceEvent& e : events) {
    if (e.trace == 0) continue;
    Working& w = traces[e.trace];
    w.tree.trace_id = e.trace;
    w.last_t = std::max(w.last_t, e.t);
    if (e.type == EventType::kSpanBegin && e.span != 0) {
      if (w.by_id.count(e.span)) continue;  // duplicate id: keep the first
      SpanNode n;
      n.id = e.span;
      n.parent = e.parent;
      n.actor = e.actor;
      n.name = e.detail;
      n.begin = e.t;
      n.end = e.t;
      n.a = e.a;
      n.b = e.b;
      w.by_id.emplace(e.span, w.tree.nodes.size());
      w.tree.nodes.push_back(std::move(n));
    } else if (e.type == EventType::kSpanEnd && e.span != 0) {
      const auto it = w.by_id.find(e.span);
      if (it == w.by_id.end()) continue;  // end without begin: drop
      SpanNode& n = w.tree.nodes[it->second];
      n.end = std::max(n.begin, e.t);
      n.closed = true;
    } else {
      w.tree.points.push_back(e);
    }
  }

  std::vector<SpanTree> out;
  out.reserve(traces.size());
  for (auto& [id, w] : traces) {
    for (SpanNode& n : w.tree.nodes) {
      if (!n.closed) n.end = std::max(n.begin, w.last_t);
    }
    // Stable begin-time order (emit order breaks ties) before indexing, so
    // `children` reads chronologically.
    std::vector<std::size_t> order(w.tree.nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t l, std::size_t r) {
                       return w.tree.nodes[l].begin < w.tree.nodes[r].begin;
                     });
    std::vector<SpanNode> sorted;
    sorted.reserve(order.size());
    for (const std::size_t i : order) {
      sorted.push_back(std::move(w.tree.nodes[i]));
    }
    w.tree.nodes = std::move(sorted);
    w.by_id.clear();
    for (std::size_t i = 0; i < w.tree.nodes.size(); ++i) {
      w.by_id.emplace(w.tree.nodes[i].id, i);
    }
    for (std::size_t i = 0; i < w.tree.nodes.size(); ++i) {
      SpanNode& n = w.tree.nodes[i];
      if (n.parent == 0) {
        w.tree.roots.push_back(i);
      } else if (const auto it = w.by_id.find(n.parent); it != w.by_id.end()) {
        w.tree.nodes[it->second].children.push_back(i);
      } else {
        w.tree.orphans.push_back(i);
      }
    }
    std::sort(w.tree.points.begin(), w.tree.points.end(),
              [](const TraceEvent& l, const TraceEvent& r) {
                return l.t < r.t;
              });
    out.push_back(std::move(w.tree));
  }
  return out;
}

namespace {

std::string fmt_ms(TimeUs us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(us) / 1000.0);
  return buf;
}

void render_node(const SpanTree& tree, std::size_t idx, int depth,
                 TimeUs origin,
                 const std::unordered_map<std::size_t, TimeUs>& self,
                 std::string& out) {
  const SpanNode& n = tree.nodes[idx];
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += n.name.empty() ? "(unnamed)" : n.name;
  out += " [actor ";
  out += std::to_string(n.actor);
  out += "] +";
  out += fmt_ms(n.begin - origin);
  out += " dur ";
  out += fmt_ms(n.end - n.begin);
  if (const auto it = self.find(idx); it != self.end()) {
    out += " self ";
    out += fmt_ms(it->second);
  }
  if (!n.closed) out += " (unclosed)";
  out += '\n';
  for (const std::size_t c : n.children) {
    render_node(tree, c, depth + 1, origin, self, out);
  }
}

}  // namespace

std::string format_span_tree(const SpanTree& tree) {
  std::string out = "trace " + std::to_string(tree.trace_id);
  const SpanNode* r = tree.root();
  const TimeUs origin = r ? r->begin : 0;
  out += "  duration ";
  out += fmt_ms(tree.duration());
  out += '\n';
  std::unordered_map<std::size_t, TimeUs> self;
  for (const SpanContribution& c : tree.decompose()) {
    self.emplace(c.node, c.self_us);
  }
  for (const std::size_t root_idx : tree.roots) {
    render_node(tree, root_idx, 1, origin, self, out);
  }
  if (!tree.orphans.empty()) {
    out += "  orphans:\n";
    for (const std::size_t o : tree.orphans) {
      render_node(tree, o, 2, origin, self, out);
    }
  }
  for (const TraceEvent& p : tree.points) {
    out += "  @+";
    out += fmt_ms(p.t - origin);
    out += ' ';
    out += std::string(to_string(p.type));
    out += " [actor ";
    out += std::to_string(p.actor);
    out += ']';
    if (!p.detail.empty()) {
      out += ' ';
      out += p.detail;
    }
    out += '\n';
  }
  return out;
}

}  // namespace lod::obs
