#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lod/obs/metrics.hpp"  // TimeUs

/// \file trace.hpp
/// The tracing half of the observability layer: a bounded ring buffer of
/// typed events with simulation timestamps, JSONL export/import, and span
/// helpers for end-to-end latencies (publish -> first frame, seek -> resume).
///
/// Unlike metrics (always on — they replace the seed's hand-rolled
/// counters), tracing is off by default: `emit` is a single predictable
/// branch when disabled, and hot paths guard with `enabled()` before even
/// building arguments.

namespace lod::obs {

/// Every event the stack can emit. Values are stable — they appear in
/// exported JSONL — so append only.
enum class EventType : std::uint8_t {
  // network
  kPacketSend,
  kPacketRecv,
  kPacketDropLoss,
  kPacketDropQueue,
  // transport
  kMsgRetransmit,
  // streaming server sessions
  kSessionOpen,
  kSessionPause,
  kSessionResume,
  kSessionSeek,
  kSessionRate,
  kSessionStop,
  kSessionEos,
  // player
  kPlayIssued,
  kRenderStart,
  kStall,
  kSlideFetch,
  kSlideShow,
  kAnnotation,
  kRepairRequest,
  kRepairResend,
  kClockSync,
  // floor control
  kFloorRequest,
  kFloorGrant,
  kFloorDeny,
  kFloorRelease,
  // petri engine
  kTransitionFire,
  // wmps
  kPublish,
  // generic span markers
  kSpanBegin,
  kSpanEnd,
  // health monitor
  kSloViolation,
};

std::string_view to_string(EventType t);
std::optional<EventType> event_type_from_string(std::string_view s);

/// Causal context for one end-to-end request, minted at a user-facing entry
/// point (open_and_play, publish, floor request) and piggybacked across
/// every hop (control protocol, edge RPCs) so each layer's spans link into
/// one tree. A default-constructed context is invalid; every span call on
/// an invalid context is a no-op, which is what keeps context propagation
/// off the disabled-path profile.
struct TraceContext {
  std::uint64_t trace_id{0};
  std::uint64_t parent_span_id{0};

  bool valid() const { return trace_id != 0; }
  /// The context a span hands to its callees: same trace, this span as
  /// parent.
  TraceContext child(std::uint64_t span_id) const {
    return TraceContext{trace_id, span_id};
  }
};

/// One trace record. The two int64 payload slots carry event-specific
/// values (sequence numbers, byte counts, token ids — see the event schema
/// table in docs/OBSERVABILITY.md); `detail` is for short free-form text
/// such as a content name or URL. `trace`/`span`/`parent` are the causal
/// coordinates (0 = not part of a trace; span/parent are only meaningful on
/// span markers and context-tagged events).
class FlightRecorder;

struct TraceEvent {
  TimeUs t{0};
  EventType type{EventType::kSpanBegin};
  std::uint64_t actor{0};  ///< host / user / transition id — event-specific
  std::int64_t a{0};
  std::int64_t b{0};
  std::uint64_t trace{0};   ///< trace id, 0 when untraced
  std::uint64_t span{0};    ///< this event's span id (span markers)
  std::uint64_t parent{0};  ///< parent span id, 0 at the root
  std::string detail;
};

/// Bounded ring buffer of TraceEvents. Oldest events are overwritten once
/// capacity is reached (`dropped()` counts them). Disabled by default.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 8192);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Timestamp source; the simulator installs its clock here.
  void set_clock(std::function<TimeUs()> clock) { clock_ = std::move(clock); }

  /// Record an event (no-op unless enabled). Stamped with the clock if one
  /// is installed, 0 otherwise.
  void emit(EventType type, std::uint64_t actor = 0, std::int64_t a = 0,
            std::int64_t b = 0, std::string detail = {});

  /// --- causal tracing -----------------------------------------------------

  /// Mint a fresh trace at a user-facing entry point. Returns an invalid
  /// context when the sink is disabled, so every downstream span call
  /// no-ops without its callers checking.
  TraceContext make_trace();

  /// Open a span inside \p ctx: emits kSpanBegin carrying a fresh span id
  /// with ctx.parent_span_id as its parent, `detail` = \p name. Returns the
  /// span id (0 when disabled or ctx invalid); hand `ctx.child(id)` to
  /// callees and pass the id back to end_span.
  std::uint64_t begin_span(const TraceContext& ctx, std::string name,
                           std::uint64_t actor = 0, std::int64_t a = 0,
                           std::int64_t b = 0);

  /// Close a span opened by begin_span (kSpanEnd with the same coordinates).
  void end_span(const TraceContext& ctx, std::uint64_t span_id,
                std::string name, std::uint64_t actor = 0, std::int64_t a = 0,
                std::int64_t b = 0);

  /// Emit any event tagged with \p ctx (e.g. kPlayIssued, kRenderStart, so
  /// SpanTree can attach point events to the session's tree).
  void emit_in(const TraceContext& ctx, EventType type,
               std::uint64_t actor = 0, std::int64_t a = 0, std::int64_t b = 0,
               std::string detail = {});

  /// Trace and span ids come from one per-sink counter starting at 1. When
  /// JSONL from several sinks will be merged into one SpanTree, give each
  /// sink a distinct seed (e.g. host << 32) so ids cannot collide.
  void set_id_seed(std::uint64_t seed) { next_id_ = seed ? seed : 1; }

  /// Mirror span open/close markers into \p flight (control lane) so the
  /// always-on journal carries span boundaries even though full tracing is
  /// opt-in — a dump then brackets failures with the spans that contain
  /// them. Setup-time only; nullptr disconnects.
  void set_flight(FlightRecorder* flight) { flight_ = flight; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_emitted() const { return total_; }
  void clear();

  /// Buffered events, oldest first.
  std::vector<TraceEvent> events() const;
  /// Buffered events of one type, oldest first.
  std::vector<TraceEvent> events(EventType type) const;

  /// One JSON object per line:
  /// {"t":..,"type":"..","actor":..,"a":..,"b":..,"detail":".."}
  std::string to_jsonl() const;
  /// Parse text produced by to_jsonl (fixed schema; unknown lines skipped).
  static std::vector<TraceEvent> parse_jsonl(std::string_view text);

 private:
  void emit_impl(EventType type, std::uint64_t actor, std::int64_t a,
                 std::int64_t b, std::string detail, std::uint64_t trace,
                 std::uint64_t span, std::uint64_t parent);

  std::vector<TraceEvent> ring_;
  std::size_t head_{0};  ///< next write slot
  std::size_t size_{0};
  std::uint64_t dropped_{0};
  std::uint64_t total_{0};
  std::uint64_t next_id_{1};  ///< shared trace/span id counter
  bool enabled_{false};
  std::function<TimeUs()> clock_;
  FlightRecorder* flight_{nullptr};
};

/// Collate per-shard event streams (each time-ordered, as a TraceSink
/// produces them) into one timeline ordered by (timestamp, shard index,
/// intra-shard emit order). Deterministic for a given input, so merged
/// traces from a ShardedRunner diff byte-stable. Give each shard's sink a
/// distinct id seed (see set_id_seed) so span ids stay unique in the merge.
std::vector<TraceEvent> collate_events(
    std::vector<std::vector<TraceEvent>> shards);

/// Serialize any event list in the sink's JSONL schema; feeding the output
/// to parse_jsonl (or examples/obs_report) round-trips. TraceSink::to_jsonl
/// is events_to_jsonl(events()).
std::string events_to_jsonl(const std::vector<TraceEvent>& events);

/// First buffered event matching \p type (and \p actor if given).
std::optional<TraceEvent> first_event(
    const std::vector<TraceEvent>& events, EventType type,
    std::optional<std::uint64_t> actor = std::nullopt);

/// Latency from the first \p from event to the first \p to event at or
/// after it. std::nullopt when either end is missing.
std::optional<TimeUs> span_between(
    const std::vector<TraceEvent>& events, EventType from, EventType to,
    std::optional<std::uint64_t> actor = std::nullopt);

/// Every from->to latency pair, pairing each \p from with the next \p to at
/// or after it (e.g. every seek -> resume in a session).
std::vector<TimeUs> span_latencies(
    const std::vector<TraceEvent>& events, EventType from, EventType to,
    std::optional<std::uint64_t> actor = std::nullopt);

}  // namespace lod::obs
