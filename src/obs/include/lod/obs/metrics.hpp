#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file metrics.hpp
/// The metrics half of the observability layer: a registry of named,
/// optionally-labeled series (counters, gauges, fixed-bucket histograms)
/// that every layer of the stack publishes into, plus a `Snapshot` value
/// type so benches and tests assert on *deltas* instead of absolute counts.
///
/// Design constraints, in order:
///  - Instrument handles are trivially copyable pointer wrappers; a null
///    handle makes every operation a predictable-branch no-op, which is what
///    keeps the disabled path off the profile (see bench_obs_overhead).
///  - Series cells have stable addresses for the registry's lifetime, so a
///    handle taken at construction stays valid across later registrations.
///  - No dependency on the simulation substrate: time is plain int64
///    microseconds, so `lod_obs` sits below `lod_net` in the link order.
///
/// Naming scheme (see docs/OBSERVABILITY.md): `lod.<layer>.<name>`, labels
/// for identity dimensions (host, session, stream), e.g.
/// `lod.server.session.packets_sent{host=0,session=3}`.

namespace lod::obs {

/// Microseconds — simulation time in the metrics layer's own terms.
using TimeUs = std::int64_t;

/// One identity dimension of a series, e.g. {"session", "3"}.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Canonical series key: `name{k1=v1,k2=v2}` with labels sorted by key
/// (label order at the call site does not create distinct series).
std::string series_key(std::string_view name, Labels labels);

/// Append the canonical key for ALREADY-SORTED labels into \p out (cleared
/// first, capacity reserved up front). The allocation-free building block
/// behind `series_key` and the registry's cold-path lookups: callers that
/// sorted once must not pay a second sort, and a reused \p out buffer stops
/// paying the key allocation after warm-up.
void series_key_sorted(std::string& out, std::string_view name,
                       const Labels& labels);

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Fixed-bucket histogram state. `counts[i]` tallies observations with
/// value <= bounds[i]; the final slot is the +inf overflow bucket.
struct HistogramData {
  std::vector<std::int64_t> bounds;   ///< ascending upper bounds
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 slots
  std::uint64_t count{0};
  std::int64_t sum{0};
  std::int64_t min{std::numeric_limits<std::int64_t>::max()};
  std::int64_t max{std::numeric_limits<std::int64_t>::min()};

  void observe(std::int64_t v);
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket containing quantile \p q in (0, 1]; the
  /// overflow bucket reports the observed max. 0 when empty.
  std::int64_t quantile_bound(double q) const;
};

namespace detail {
/// One registered series. Handles point at these; the registry keeps them
/// at stable addresses.
struct Series {
  MetricKind kind{};
  std::string name;
  Labels labels;
  std::uint64_t counter{0};
  std::int64_t gauge{0};
  HistogramData hist;
};
}  // namespace detail

/// Monotonic event count. A default-constructed (null) handle ignores
/// everything — instrumented code never tests "is observability on".
class Counter {
 public:
  Counter() = default;
  /// const: a handle is a reference to the series cell, not the cell itself
  /// (instrumented code often holds handles through const objects).
  void inc(std::uint64_t n = 1) const {
    if (s_) s_->counter += n;
  }
  std::uint64_t value() const { return s_ ? s_->counter : 0; }
  explicit operator bool() const { return s_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::Series* s) : s_(s) {}
  detail::Series* s_{nullptr};
};

/// A value that goes up and down (active sessions, queue depth).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const {
    if (s_) s_->gauge = v;
  }
  void add(std::int64_t d) const {
    if (s_) s_->gauge += d;
  }
  std::int64_t value() const { return s_ ? s_->gauge : 0; }
  explicit operator bool() const { return s_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Series* s) : s_(s) {}
  detail::Series* s_{nullptr};
};

/// Fixed-bucket distribution (latencies, sizes).
class Histogram {
 public:
  Histogram() = default;
  void observe(std::int64_t v) const {
    if (s_) s_->hist.observe(v);
  }
  const HistogramData* data() const { return s_ ? &s_->hist : nullptr; }
  explicit operator bool() const { return s_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Series* s) : s_(s) {}
  detail::Series* s_{nullptr};
};

/// An immutable copy of every series at one instant. Two snapshots diff into
/// a delta (`since`), which is how benches isolate the cost of one phase.
class Snapshot {
 public:
  struct Entry {
    MetricKind kind{};
    std::string name;
    Labels labels;
    std::uint64_t counter{0};
    std::int64_t gauge{0};
    HistogramData hist;
  };

  /// Series key -> entry, iterable for custom aggregation.
  const std::map<std::string, Entry>& entries() const { return entries_; }

  /// Exact-series reads; 0 / nullptr when the series does not exist.
  std::uint64_t counter(std::string_view name, Labels labels = {}) const;
  std::int64_t gauge(std::string_view name, Labels labels = {}) const;
  const HistogramData* histogram(std::string_view name,
                                 Labels labels = {}) const;

  /// Sum of a counter across every label combination.
  std::uint64_t total(std::string_view name) const;
  /// Merge of a histogram across every label combination (bucket-wise when
  /// bounds agree; count/sum/min/max always).
  HistogramData merged_histogram(std::string_view name) const;

  /// The delta from \p earlier to this snapshot: counters and histogram
  /// tallies subtract (series absent earlier count from zero); gauges keep
  /// this snapshot's value (a gauge delta is rarely what a bench means).
  Snapshot since(const Snapshot& earlier) const;

  /// Merge per-shard snapshots (label, snapshot) into one, in shard order:
  /// counters sum; histograms add bucket-wise when bounds agree (moments
  /// only otherwise, as in merged_histogram); gauges are last-writer in the
  /// aggregate series AND preserved per shard under an appended
  /// {shard=<label>} label, so nothing a shard reported is lost. A series
  /// key appearing with different kinds across shards throws
  /// std::logic_error (the registry's re-registration contract). The result
  /// is deterministic for a given input order.
  static Snapshot merged(
      const std::vector<std::pair<std::string, Snapshot>>& shards);

  std::size_t size() const { return entries_.size(); }

 private:
  friend class MetricsRegistry;
  std::map<std::string, Entry> entries_;
};

/// The registry. Layers request instruments by (name, labels); requesting
/// the same identity twice returns a handle to the same cell, so publishers
/// and readers meet without sharing state explicitly.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Throws std::logic_error if the identity exists with a different kind.
  Counter counter(std::string_view name, Labels labels = {});
  Gauge gauge(std::string_view name, Labels labels = {});
  /// \p bounds empty => the canonical latency buckets.
  Histogram histogram(std::string_view name, std::vector<std::int64_t> bounds,
                      Labels labels = {});
  Histogram histogram(std::string_view name, Labels labels = {}) {
    return histogram(name, {}, std::move(labels));
  }

  /// Canonical latency buckets, microseconds: 1ms..60s, roughly 1-2-5.
  static const std::vector<std::int64_t>& latency_buckets_us();

  /// Number of registered series (the label-cardinality guard in tests).
  /// Retired series do not count.
  std::size_t series_count() const { return series_.size(); }

  /// Retire every series whose name starts with \p name_prefix and whose
  /// labels contain all of \p labels (subset match, order-insensitive).
  /// Called on session close so per-session series stop growing the
  /// registry. Retired cells keep their addresses — handles taken earlier
  /// stay valid (writes land in the graveyard) — but the series leaves
  /// snapshot(), series_count(), and future resolve() lookups; re-requesting
  /// the same identity creates a fresh cell. Aggregate (unlabeled or
  /// differently-labeled) series are untouched. Returns how many series
  /// were retired.
  std::size_t retire(std::string_view name_prefix, const Labels& labels = {});

  /// Series retired so far (bookkeeping / leak checks in tests).
  std::size_t retired_count() const { return retired_.size(); }

  Snapshot snapshot() const;

 private:
  /// Transparent heterogeneous hash/eq so lookups by string_view (the
  /// reusable key buffer) never allocate a temporary std::string.
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  detail::Series* resolve(MetricKind kind, std::string_view name,
                          Labels labels);

  /// Key -> series. Unordered on purpose: resolve() is the cold path of the
  /// handle API but still sits on session-open paths; snapshot() re-sorts
  /// into its std::map, so snapshots stay deterministically ordered.
  std::unordered_map<std::string, std::unique_ptr<detail::Series>, KeyHash,
                     std::equal_to<>>
      series_;
  /// Reused key-building buffer: cold lookups stop allocating after warm-up.
  std::string key_buf_;
  /// Graveyard: cells stay allocated so outstanding handles never dangle.
  std::vector<std::unique_ptr<detail::Series>> retired_;
};

}  // namespace lod::obs
