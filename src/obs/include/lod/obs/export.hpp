#pragma once

#include <string>

#include "lod/obs/metrics.hpp"

/// \file export.hpp
/// Telemetry exporters over `Snapshot`: the bridge from the in-process
/// registry to external tooling. Both walk the same snapshot, so an export
/// is a consistent instant of every series — counters, gauges, histograms
/// with buckets/sum/count.

namespace lod::obs {

/// Prometheus text exposition (version 0.0.4). Series names map dots to
/// underscores (`lod.server.packets_sent` -> `lod_server_packets_sent`);
/// histograms expand to cumulative `_bucket{le=...}` series plus `_sum` and
/// `_count`, as scrapers expect. Deterministic output (sorted by name then
/// label key) so goldens are stable.
std::string to_prometheus(const Snapshot& snap);

/// Structured JSON: {"series":[{name, kind, labels, ...}]} with histograms
/// carrying explicit bounds/counts arrays plus count/sum/min/max. Same
/// deterministic ordering as the Prometheus writer.
std::string to_json(const Snapshot& snap);

}  // namespace lod::obs
