#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lod/obs/metrics.hpp"  // TimeUs

/// \file flight.hpp
/// The flight recorder: an always-on, bounded, lock-free journal of compact
/// binary events — the "last N seconds of history" that ships with every
/// failure. Metrics answer "what is the state now"; the trace sink answers
/// "what happened" but only when someone turned it on *before* the incident.
/// The flight recorder closes that gap: recording is cheap enough to leave
/// on in production (a handful of relaxed atomic stores per event, no
/// allocation, no locks), and when a trigger fires (an SLO violation, a
/// persistent desync) the journal is rendered to JSONL and handed to the
/// installed dump sink, so the evidence survives the failure it describes.
///
/// Structure: LANES of power-of-two rings. Each lane is SINGLE-WRITER —
/// per-shard/per-loop-thread, matching the stack's shard-per-thread model —
/// while readers (dumps, the /debug/flight endpoint) may run concurrently
/// with writers on any thread. Slots are published with a release store of
/// the lane head; a reader validates each event against the head re-read
/// after the scan, discarding anything the writer may have been overwriting
/// mid-read. Event words are relaxed atomics, so a discarded torn read is
/// harmless (and clean under TSan).
///
/// Lane 0 (`kLaneControl`) carries rare, high-value events (span open/close,
/// sync verdicts, frame drops, SLO violations); lane 1 (`kLaneDispatch`)
/// carries the firehose (per-event sim/transport dispatch), so the firehose
/// can never evict the history that explains a failure.
///
/// The binary format (t, type, lane, actor, a, b — 32 bytes) is deliberately
/// the seed of record-replay (ROADMAP item 4): a dispatch journal plus the
/// sync layer's state images is exactly a replay log.

namespace lod::obs {

/// Every event the journal can carry. Values are stable — they appear in
/// dumped JSONL — so append only.
enum class FlightType : std::uint8_t {
  kSpanBegin,     ///< trace span opened    (actor, a = span id, b = trace id)
  kSpanEnd,       ///< trace span closed    (actor, a = span id, b = trace id)
  kSimEvent,      ///< simulator dispatched (a = event id, b = seq)
  kNetEvent,      ///< transport datagram   (actor = host, a = id, b = bytes)
  kSyncVerdict,   ///< sync epoch compared  (actor = host, a = epoch, b = verdict)
  kFrameDrop,     ///< media/frame dropped  (actor = host, a = id, b = cause)
  kSloViolation,  ///< SLO crossed          (actor = site, a = value*1000, b = threshold*1000)
  kCacheMiss,     ///< edge demand miss     (actor = host, a = segment, b = bytes)
  kFailover,      ///< player switched site (actor = host, a = old, b = new)
  kResync,        ///< sync delta applied   (actor = host, a = epoch, b = blocks)
  kDump,          ///< a dump was triggered (a = dump ordinal)
  kInput,         ///< scripted session input (actor = session, a = kind,
                  ///< b = argument) — the record-replay journal entry
};

std::string_view to_string(FlightType t);
std::optional<FlightType> flight_type_from_string(std::string_view s);

/// `kFrameDrop` causes carried in `b`.
enum class DropCause : std::uint64_t {
  kLoss = 1,       ///< random link loss (sim network)
  kQueue = 2,      ///< drop-tail queue overflow (sim network)
  kBadFrame = 3,   ///< malformed wire frame (count-and-drop)
  kUnitLost = 4,   ///< player declared a sequence gap lost
  kUndeliverable = 5,  ///< send failed (oversize datagram, dead socket)
};

/// One decoded journal entry.
struct FlightEvent {
  TimeUs t{0};
  FlightType type{FlightType::kSimEvent};
  std::uint16_t lane{0};
  std::uint32_t actor{0};
  std::uint64_t a{0};
  std::uint64_t b{0};
};

/// What a dump sink receives: the trigger's reason plus the journal rendered
/// to JSONL (meta line first, then one event per line, oldest first).
struct FlightDump {
  std::string reason;
  TimeUs t{0};
  std::size_t events{0};
  std::uint64_t dropped{0};
  std::string jsonl;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kLaneControl = 0;
  static constexpr std::size_t kLaneDispatch = 1;

  struct Config {
    /// Writer lanes (rounded up to a power of two). Each lane is
    /// single-writer; out-of-range lane arguments wrap, never overflow.
    std::size_t lanes{2};
    /// Ring slots per lane (rounded up to a power of two). Once a lane
    /// wraps, readers retain capacity-1 events: the oldest slot is always
    /// treated as potentially mid-overwrite by an unpublished write.
    /// The default keeps a lane's ring at 64 KB (2048 x 32-byte slots) so
    /// the write cursor stays cache-resident on the hot dispatch path —
    /// an 8x larger ring measurably taxes the playout engine because every
    /// record streams through a cold line.
    std::size_t capacity{2048};
  };

  FlightRecorder();  ///< default Config
  explicit FlightRecorder(Config cfg);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Recording on/off. On by default — the whole point is being already
  /// there when something goes wrong; `bench_obs_overhead` keeps it honest.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Timestamp source for `record` (hot paths that already know the time
  /// use `record_at` and skip the indirect call). Setup-time only.
  void set_clock(std::function<TimeUs()> clock) { clock_ = std::move(clock); }

  /// Journal one event at an explicit timestamp. The hot-path form: one
  /// relaxed branch when disabled; a head load, four relaxed word stores
  /// and a release head store when enabled. Single writer per lane.
  void record_at(TimeUs t, FlightType type, std::uint32_t actor = 0,
                 std::uint64_t a = 0, std::uint64_t b = 0,
                 std::size_t lane = kLaneControl) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    const std::size_t li = lane & lane_mask_;
    Lane& ln = lanes_[li];
    const std::uint64_t h = ln.head.load(std::memory_order_relaxed);
    std::atomic<std::uint64_t>* w = ln.words.get() + ((h & slot_mask_) << 2);
    w[0].store(static_cast<std::uint64_t>(t), std::memory_order_relaxed);
    w[1].store((static_cast<std::uint64_t>(type) << 48) |
                   (static_cast<std::uint64_t>(li) << 32) | actor,
               std::memory_order_relaxed);
    w[2].store(a, std::memory_order_relaxed);
    w[3].store(b, std::memory_order_relaxed);
    ln.head.store(h + 1, std::memory_order_release);
  }

  /// Journal one event stamped with the installed clock (0 without one).
  void record(FlightType type, std::uint32_t actor = 0, std::uint64_t a = 0,
              std::uint64_t b = 0, std::size_t lane = kLaneControl) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    record_at(clock_ ? clock_() : 0, type, actor, a, b, lane);
  }

  std::size_t lanes() const { return lane_mask_ + 1; }
  std::size_t capacity() const { return slot_mask_ + 1; }  ///< per lane

  /// Events ever recorded / aged out of the readable window (capacity-1
  /// per wrapped lane), across lanes.
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  /// Retained events of one lane, oldest first. Safe concurrently with the
  /// lane's writer; events the writer was overwriting mid-read are omitted.
  std::vector<FlightEvent> events(std::size_t lane) const;
  /// Retained events of every lane merged into one timeline (stable-sorted
  /// by timestamp; ties keep control-lane events first).
  std::vector<FlightEvent> events() const;

  /// One JSON object per line: {"t":..,"ft":"sync_verdict","lane":0,
  /// "actor":..,"a":..,"b":..}. The schema key is "ft" (not "type") so
  /// flight lines and trace-sink lines can share a file unambiguously.
  std::string to_jsonl() const;
  /// Parse text produced by `to_jsonl` / a dump. Lines without an "ft" key
  /// (meta lines, trace-sink lines, garbage) are skipped.
  static std::vector<FlightEvent> parse_jsonl(std::string_view text);

  /// --- dump-on-trigger ------------------------------------------------------

  /// Install the dump sink. Without one, `trigger_dump` only counts (and
  /// journals a kDump marker) — rendering ~capacity lines of JSONL on every
  /// trigger would make triggers expensive exactly when the system hurts.
  void on_dump(std::function<void(const FlightDump&)> sink);

  /// Fire a dump: journal a kDump marker, and when a sink is installed
  /// render the journal (meta line + events, oldest first) and deliver it.
  /// Returns the dump ordinal (1-based). Callable from any thread.
  std::uint64_t trigger_dump(std::string reason);

  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  /// The most recent dump delivered to a sink (reason empty when none yet).
  FlightDump last_dump() const;

 private:
  struct Lane {
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;  ///< capacity * 4
    std::atomic<std::uint64_t> head{0};
  };

  std::size_t lane_mask_;
  std::size_t slot_mask_;
  std::unique_ptr<Lane[]> lanes_;
  std::atomic<bool> enabled_{true};
  std::function<TimeUs()> clock_;

  std::atomic<std::uint64_t> dumps_{0};
  mutable std::mutex dump_mu_;  ///< guards sink_ and last_ (cold path)
  std::function<void(const FlightDump&)> sink_;
  FlightDump last_;
};

/// Render the meta header line of a dump:
/// {"flight_dump":{"reason":"..","t":N,"events":N,"dropped":N}}
std::string flight_dump_meta(const FlightDump& d);

}  // namespace lod::obs
