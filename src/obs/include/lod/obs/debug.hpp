#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lod/obs/flight.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/obs/rollup.hpp"
#include "lod/obs/spantree.hpp"
#include "lod/obs/trace.hpp"

/// \file debug.hpp
/// Renderers behind the live `/debug/*` introspection plane. Each function
/// is a pure transformation (snapshot / events / recorder -> JSON string),
/// so the HTTP layer in `net::RealTransport` only routes, and the payloads
/// are unit-testable without sockets. Catalog (see docs/OBSERVABILITY.md):
///
///   /debug/vars      debug_vars_json      snapshot + rollup-window rates
///   /debug/sessions  debug_sessions_json  per-session series, grouped
///   /debug/sync      debug_sync_json      the lod.sync.* slice
///   /debug/trace     debug_trace_json     trace index or one SpanTree
///   /debug/flight    debug_flight_jsonl   live flight-recorder journal

namespace lod::obs {

/// `{"t":..,"rollup":{..},"rates":{name:{delta,over_us,per_second}},
///   "series":[...]}` — the full to_json series list plus, for every
/// counter name with a nonzero delta in the rollup history, its rate over
/// the retained windows. `rollup` may be null (rates/rollup omitted).
std::string debug_vars_json(const Snapshot& snap, const RollupStore* rollup,
                            TimeUs now);

/// Per-session view: every `lod.server.session.*` series grouped by label
/// set, plus the per-host `active_sessions` gauges and `sessions_opened`
/// counters.
std::string debug_sessions_json(const Snapshot& snap);

/// The `lod.sync.*` slice of the snapshot (epochs, gossip, verdicts,
/// resync traffic) as one JSON object per series name group.
std::string debug_sync_json(const Snapshot& snap);

/// One reconstructed trace as JSON: nodes with self-time attribution from
/// `SpanTree::decompose`, root/orphan indices, and the critical path.
std::string span_tree_to_json(const SpanTree& tree);

/// `trace_id == 0`: an index of every trace in `events` (id, root name,
/// span count, duration). Otherwise the matching tree via
/// `span_tree_to_json`, or `{"error":"trace not found",...}`.
std::string debug_trace_json(const std::vector<TraceEvent>& events,
                             std::uint64_t trace_id);

/// The live journal in dump format: a `flight_dump` meta line (reason,
/// stamped `now`) followed by one event per line — the same bytes a
/// triggered dump writes, so tooling reads both.
std::string debug_flight_jsonl(const FlightRecorder& rec, TimeUs now,
                               std::string_view reason = "live");

}  // namespace lod::obs
