#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lod/obs/trace.hpp"

/// \file spantree.hpp
/// Reconstruction of per-trace span trees from trace events — the reader
/// side of causal tracing. `build_span_trees` pairs kSpanBegin/kSpanEnd by
/// span id, links children to parents, and groups everything by trace id;
/// the events may come from one sink or from several sinks' parsed JSONL
/// concatenated (give each sink a distinct id seed so ids cannot collide).
///
/// `SpanTree::decompose` answers the question the flat event list cannot:
/// *where did the time go*. It charges every instant of the root span's
/// window to the deepest span covering it, so the per-span self-times sum
/// exactly to the root's duration ("startup 480 ms = 310 ms origin fill +
/// 120 ms edge relay + 50 ms render").

namespace lod::obs {

/// One reconstructed span. `children` index into SpanTree::nodes.
struct SpanNode {
  std::uint64_t id{0};
  std::uint64_t parent{0};  ///< parent span id, 0 at a root
  std::uint64_t actor{0};
  std::string name;
  TimeUs begin{0};
  TimeUs end{0};       ///< for unclosed spans, the trace's last event time
  bool closed{false};  ///< saw a matching kSpanEnd
  std::int64_t a{0};   ///< payload slots from the kSpanBegin event
  std::int64_t b{0};
  std::vector<std::size_t> children;
};

/// Self-time attribution for one span (see SpanTree::decompose).
struct SpanContribution {
  std::size_t node{0};  ///< index into SpanTree::nodes
  TimeUs self_us{0};
};

/// All spans and context-tagged point events of one trace id.
struct SpanTree {
  std::uint64_t trace_id{0};
  std::vector<SpanNode> nodes;        ///< begin-time order
  std::vector<std::size_t> roots;     ///< nodes with parent == 0
  std::vector<std::size_t> orphans;   ///< parent id named but never seen
  std::vector<TraceEvent> points;     ///< non-span events tagged with ctx

  /// The first root, or nullptr for a degenerate (span-free) trace.
  const SpanNode* root() const;
  /// root()->end - root()->begin, 0 without a root.
  TimeUs duration() const;

  /// Charge each instant of [root.begin, root.end] to the deepest covering
  /// span. Contributions are returned largest first and sum exactly to
  /// duration(). Unclosed spans participate with their clamped window.
  std::vector<SpanContribution> decompose() const;

  /// Same attribution over the subtree rooted at nodes[\p at]: charges sum
  /// exactly to that span's own duration (e.g. decompose the
  /// "player.startup" span to split measured startup latency by hop).
  std::vector<SpanContribution> decompose(std::size_t at) const;

  /// The chain of spans from the root to the deepest-ending descendant —
  /// the path a latency budget walks. Indices into nodes, root first.
  std::vector<std::size_t> critical_path() const;
};

/// Group \p events by trace id and reconstruct one tree per trace, ordered
/// by trace id. Events with trace == 0 are ignored.
std::vector<SpanTree> build_span_trees(const std::vector<TraceEvent>& events);

/// Human-readable indented timeline of one tree (used by obs_report):
/// offsets relative to the root's begin, self-times from decompose().
std::string format_span_tree(const SpanTree& tree);

}  // namespace lod::obs
