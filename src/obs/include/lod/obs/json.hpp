#pragma once

#include <string>
#include <string_view>

/// \file json.hpp
/// Minimal JSON string escaping shared by the trace JSONL codec and the
/// snapshot exporters. One implementation so a fix lands everywhere: `"`,
/// `\`, and every control character < 0x20 must round-trip losslessly
/// through escape -> unescape (hostile content names and URLs flow through
/// trace `detail` fields verbatim).

namespace lod::obs {

/// Append \p s to \p out with JSON string escaping (`"`, `\`, \b \f \n \r
/// \t named; any other control character as \u00XX).
void append_json_escaped(std::string& out, std::string_view s);

/// Inverse of append_json_escaped. Also accepts the full \uXXXX form
/// (encoded back to UTF-8, combining \uD800-\uDBFF + \uDC00-\uDFFF surrogate
/// pairs into one supplementary-plane code point; unpaired surrogates decode
/// to U+FFFD) and unknown escapes verbatim, so any valid JSON string body
/// parses. A \uXXXX truncated by end-of-string is dropped, never read past
/// the buffer.
std::string json_unescape(std::string_view s);

}  // namespace lod::obs
