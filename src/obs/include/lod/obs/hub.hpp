#pragma once

#include <functional>
#include <utility>

#include "lod/obs/flight.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/obs/trace.hpp"

/// \file hub.hpp
/// The per-simulation observability root. The `Simulator` owns one Hub and
/// every layer reaches it through the simulator (or a pointer handed down at
/// attach time), so one simulation == one registry == one trace timeline.

namespace lod::obs {

class Hub {
 public:
  Hub() { trace_.set_flight(&flight_); }
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }

  /// The always-on flight recorder (see flight.hpp). Spans mirror into it
  /// automatically; layers journal their own events through this handle.
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Install the timestamp source (the simulator's clock). Shared with the
  /// trace sink and the flight recorder.
  void set_clock(std::function<TimeUs()> clock) {
    clock_ = std::move(clock);
    trace_.set_clock(clock_);
    flight_.set_clock(clock_);
  }

  /// Current time per the installed clock; 0 if none.
  TimeUs now_us() const { return clock_ ? clock_() : 0; }

  Snapshot snapshot() const { return metrics_.snapshot(); }

 private:
  MetricsRegistry metrics_;
  TraceSink trace_;
  FlightRecorder flight_;
  std::function<TimeUs()> clock_;
};

}  // namespace lod::obs
