#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lod/obs/hub.hpp"

/// \file health.hpp
/// The SLO health monitor: registered rules evaluated against periodic
/// registry snapshots on the simulated clock. A rule maps a snapshot to a
/// scalar (startup p95, stall ratio, cache hit rate, ...) and a threshold;
/// crossing it flips the rule unhealthy, emits a typed `kSloViolation`
/// trace event, and bumps `lod.health.violations{rule}`. `site_healthy()`
/// is the control-signal side: the edge `ReplicaSelector` consults it to
/// demote sites whose SLOs are violated, so telemetry feeds back into
/// placement.
///
/// `lod_obs` sits below `lod_net`, so the monitor does not know the
/// simulator: periodic evaluation is driven through an injected scheduler
/// callback (`Simulator::schedule_after` fits the shape).

namespace lod::obs {

/// Which side of the threshold violates the SLO.
enum class SloDirection : std::uint8_t {
  kAboveIsBad,  ///< violation when value > threshold (stalls, failovers)
  kBelowIsBad,  ///< violation when value < threshold (hit rate)
};

/// One SLO. `value` returns std::nullopt when the rule has no signal yet
/// (e.g. too few samples) — an unevaluable rule is healthy.
struct SloRule {
  std::string name;
  std::string site;  ///< site/host label this rule guards; "" = global
  double threshold{0};
  SloDirection direction{SloDirection::kAboveIsBad};
  std::function<std::optional<double>(const Snapshot&, TimeUs now)> value;
};

/// Last evaluation result for one rule.
struct SloStatus {
  std::string rule;
  std::string site;
  bool healthy{true};
  bool evaluated{false};  ///< value() produced a signal at least once
  double value{0};
  double threshold{0};
  TimeUs last_eval{0};
};

/// Aggregate summary returned by health().
struct HealthSummary {
  bool healthy{true};
  std::size_t rules{0};
  std::size_t violated{0};
  std::vector<SloStatus> statuses;
};

class HealthMonitor {
 public:
  /// (delay_us, fn): run fn after delay_us of simulated time.
  using Scheduler = std::function<void(TimeUs, std::function<void()>)>;

  explicit HealthMonitor(Hub& hub);
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void add_rule(SloRule rule);
  std::size_t rule_count() const { return rules_.size(); }

  /// Evaluate every rule against a fresh snapshot now. Transitions into
  /// violation emit kSloViolation (actor = numeric site when the site label
  /// parses, a = value*1000, b = threshold*1000, detail = rule name) and
  /// increment lod.health.violations{rule}. Returns the number of rules
  /// currently in violation.
  std::size_t evaluate();

  /// Start periodic evaluation every \p period_us via \p sched. Safe to
  /// destroy the monitor with evaluations still queued.
  void start_periodic(Scheduler sched, TimeUs period_us);
  void stop_periodic();

  HealthSummary health() const;
  bool healthy() const;
  /// False when any rule guarding \p site is currently violated. Rules with
  /// an empty site never demote a specific site.
  bool site_healthy(std::string_view site) const;

  const std::vector<SloStatus>& statuses() const { return statuses_; }

 private:
  void tick();

  Hub& hub_;
  std::vector<SloRule> rules_;
  std::vector<SloStatus> statuses_;
  /// Pre-resolved lod.health.violations{rule} handles, parallel to rules_.
  std::vector<Counter> violation_counters_;
  Scheduler sched_;
  TimeUs period_us_{0};
  /// Guards queued scheduler callbacks against outliving the monitor.
  std::shared_ptr<bool> alive_;
};

/// Canned rule factories for the stack's core SLOs ----------------------------

/// Startup p95 (lod.player.startup_us merged across hosts) above \p max_us.
/// Needs >= min_samples observations to fire.
SloRule slo_startup_p95(TimeUs max_us, std::uint64_t min_samples = 1);

/// Stall events per rendered unit (lod.player.stalls /
/// lod.player.units_rendered, summed across hosts) above \p max_ratio.
SloRule slo_stall_ratio(double max_ratio, std::uint64_t min_rendered = 1);

/// Edge cache hit rate hits/(hits+misses) for host \p site below
/// \p min_rate. Guards that site.
SloRule slo_edge_cache_hit_rate(std::string site, double min_rate,
                                std::uint64_t min_lookups = 1);

/// Total player failovers above \p max_failovers.
SloRule slo_failover_count(std::uint64_t max_failovers);

/// Replica delay-estimate staleness: now minus the site's
/// lod.edge.selector.last_observation_us gauge above \p max_age_us. Guards
/// that site; silent until the selector has observed the site once.
SloRule slo_replica_staleness(std::string site, TimeUs max_age_us);

}  // namespace lod::obs
