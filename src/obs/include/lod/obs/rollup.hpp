#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "lod/obs/metrics.hpp"

/// \file rollup.hpp
/// RollupStore: a bounded ring of windowed Snapshot *diffs* giving metrics a
/// short time-series memory. The registry's counters are monotone totals —
/// fine for "how many ever", useless for "how fast right now". The rollup
/// keeps the last N windows of `Snapshot::since` deltas (one per roll), so
/// `/debug/vars` can answer rate questions ("packets/s over the last 10 s")
/// and dashboards get history without an external scraper.
///
/// Ownership: single-threaded. In RealTransport the store lives on the epoll
/// loop thread and is rolled by a periodic timer; `/debug/*` handlers run on
/// the same thread, so no locking is needed.

namespace lod::obs {

class RollupStore {
 public:
  struct Config {
    TimeUs window_us{1'000'000};  ///< nominal roll period (informational)
    std::size_t windows{64};      ///< windows retained (ring)
  };

  /// One retained window: the registry delta over [start, end).
  struct Window {
    TimeUs start{0};
    TimeUs end{0};
    Snapshot delta;
  };

  RollupStore();  ///< default Config
  explicit RollupStore(Config cfg) : cfg_(cfg) {}

  const Config& config() const { return cfg_; }

  /// Ingest the current registry snapshot at time `now`. The first call
  /// only primes the baseline; subsequent calls append a window holding
  /// `snap.since(baseline)` and advance the baseline. Windows where `now`
  /// did not advance are dropped (empty-window diff would divide by zero
  /// and carry no information).
  void roll(const Snapshot& snap, TimeUs now);

  std::size_t size() const { return windows_.size(); }
  bool primed() const { return primed_; }
  const std::deque<Window>& windows() const { return windows_; }

  /// Sum of a counter's deltas over up to the most recent `span` windows
  /// (0 = all retained), with the covered wall time. Rate = delta/seconds.
  struct Rate {
    std::uint64_t delta{0};
    TimeUs over_us{0};
    double per_second() const {
      return over_us > 0 ? static_cast<double>(delta) * 1e6 /
                               static_cast<double>(over_us)
                         : 0.0;
    }
  };
  Rate rate(std::string_view name, std::size_t span = 0) const;

  /// Merge one histogram's per-window deltas across up to `span` recent
  /// windows (0 = all). Bucket layouts are merged when compatible,
  /// moments-only otherwise (same policy as Snapshot::merged_histogram).
  HistogramData merged_histogram(std::string_view name,
                                 std::size_t span = 0) const;

  /// Covered time range across the retained windows ({0,0} when empty).
  TimeUs oldest_start() const {
    return windows_.empty() ? 0 : windows_.front().start;
  }
  TimeUs newest_end() const {
    return windows_.empty() ? 0 : windows_.back().end;
  }

 private:
  Config cfg_;
  bool primed_{false};
  TimeUs last_t_{0};
  Snapshot last_;
  std::deque<Window> windows_;
};

}  // namespace lod::obs
