#include "lod/obs/health.hpp"

#include <charconv>
#include <cmath>
#include <utility>

namespace lod::obs {

namespace {
std::uint64_t actor_of(const std::string& site) {
  std::uint64_t v = 0;
  const auto [p, ec] =
      std::from_chars(site.data(), site.data() + site.size(), v);
  return ec == std::errc{} && p == site.data() + site.size() ? v : 0;
}
}  // namespace

HealthMonitor::HealthMonitor(Hub& hub)
    : hub_(hub), alive_(std::make_shared<bool>(true)) {}

HealthMonitor::~HealthMonitor() { *alive_ = false; }

void HealthMonitor::add_rule(SloRule rule) {
  SloStatus st;
  st.rule = rule.name;
  st.site = rule.site;
  st.threshold = rule.threshold;
  statuses_.push_back(std::move(st));
  // Resolve the rule's violation counter once here, not per crossing.
  violation_counters_.push_back(
      hub_.metrics().counter("lod.health.violations", {{"rule", rule.name}}));
  rules_.push_back(std::move(rule));
}

std::size_t HealthMonitor::evaluate() {
  const Snapshot snap = hub_.metrics().snapshot();
  const TimeUs now = hub_.now_us();
  std::size_t violated = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    SloStatus& st = statuses_[i];
    st.last_eval = now;
    const std::optional<double> v = rule.value ? rule.value(snap, now)
                                               : std::nullopt;
    if (!v) {
      // No signal: the rule holds its previous verdict (a site that went
      // quiet stays demoted until evidence says otherwise).
      if (!st.healthy) ++violated;
      continue;
    }
    st.evaluated = true;
    st.value = *v;
    const bool bad = rule.direction == SloDirection::kAboveIsBad
                         ? *v > rule.threshold
                         : *v < rule.threshold;
    if (bad) ++violated;
    if (bad && st.healthy) {
      // Transition into violation: one typed event + one counted violation
      // per crossing, not per evaluation, so a persistent breach does not
      // flood the ring.
      hub_.trace().emit(EventType::kSloViolation, actor_of(rule.site),
                        std::llround(*v * 1000.0),
                        std::llround(rule.threshold * 1000.0), rule.name);
      violation_counters_[i].inc();
      // Ship the last N seconds of history with the violation: journal the
      // crossing, then trigger a flight dump (a no-op beyond the marker
      // when no dump sink is installed).
      hub_.flight().record_at(
          now, FlightType::kSloViolation,
          static_cast<std::uint32_t>(actor_of(rule.site)),
          static_cast<std::uint64_t>(std::llround(*v * 1000.0)),
          static_cast<std::uint64_t>(std::llround(rule.threshold * 1000.0)));
      hub_.flight().trigger_dump("slo." + rule.name);
    }
    st.healthy = !bad;
  }
  return violated;
}

void HealthMonitor::start_periodic(Scheduler sched, TimeUs period_us) {
  sched_ = std::move(sched);
  period_us_ = period_us > 0 ? period_us : 1;
  tick();
}

void HealthMonitor::stop_periodic() { sched_ = nullptr; }

void HealthMonitor::tick() {
  if (!sched_) return;
  sched_(period_us_, [this, alive = alive_] {
    if (!*alive) return;
    evaluate();
    tick();
  });
}

HealthSummary HealthMonitor::health() const {
  HealthSummary out;
  out.rules = rules_.size();
  out.statuses = statuses_;
  for (const SloStatus& st : statuses_) {
    if (!st.healthy) ++out.violated;
  }
  out.healthy = out.violated == 0;
  return out;
}

bool HealthMonitor::healthy() const {
  for (const SloStatus& st : statuses_) {
    if (!st.healthy) return false;
  }
  return true;
}

bool HealthMonitor::site_healthy(std::string_view site) const {
  for (const SloStatus& st : statuses_) {
    if (!st.healthy && !st.site.empty() && st.site == site) return false;
  }
  return true;
}

// --- canned rules -----------------------------------------------------------

SloRule slo_startup_p95(TimeUs max_us, std::uint64_t min_samples) {
  SloRule r;
  r.name = "startup_p95_us";
  r.threshold = static_cast<double>(max_us);
  r.direction = SloDirection::kAboveIsBad;
  r.value = [min_samples](const Snapshot& snap,
                          TimeUs) -> std::optional<double> {
    const HistogramData h = snap.merged_histogram("lod.player.startup_us");
    if (h.count < min_samples) return std::nullopt;
    return static_cast<double>(h.quantile_bound(0.95));
  };
  return r;
}

SloRule slo_stall_ratio(double max_ratio, std::uint64_t min_rendered) {
  SloRule r;
  r.name = "stall_ratio";
  r.threshold = max_ratio;
  r.direction = SloDirection::kAboveIsBad;
  r.value = [min_rendered](const Snapshot& snap,
                           TimeUs) -> std::optional<double> {
    const std::uint64_t rendered = snap.total("lod.player.units_rendered");
    if (rendered < min_rendered) return std::nullopt;
    return static_cast<double>(snap.total("lod.player.stalls")) /
           static_cast<double>(rendered);
  };
  return r;
}

SloRule slo_edge_cache_hit_rate(std::string site, double min_rate,
                                std::uint64_t min_lookups) {
  SloRule r;
  r.name = "edge_cache_hit_rate";
  r.site = site;
  r.threshold = min_rate;
  r.direction = SloDirection::kBelowIsBad;
  r.value = [site = std::move(site), min_lookups](
                const Snapshot& snap, TimeUs) -> std::optional<double> {
    const Labels at{{"host", site}};
    const std::uint64_t hits = snap.counter("lod.edge.cache.hits", at);
    const std::uint64_t misses = snap.counter("lod.edge.cache.misses", at);
    if (hits + misses < min_lookups) return std::nullopt;
    return static_cast<double>(hits) / static_cast<double>(hits + misses);
  };
  return r;
}

SloRule slo_failover_count(std::uint64_t max_failovers) {
  SloRule r;
  r.name = "failover_count";
  r.threshold = static_cast<double>(max_failovers);
  r.direction = SloDirection::kAboveIsBad;
  r.value = [](const Snapshot& snap, TimeUs) -> std::optional<double> {
    return static_cast<double>(snap.total("lod.player.failovers"));
  };
  return r;
}

SloRule slo_replica_staleness(std::string site, TimeUs max_age_us) {
  SloRule r;
  r.name = "replica_estimate_staleness_us";
  r.site = site;
  r.threshold = static_cast<double>(max_age_us);
  r.direction = SloDirection::kAboveIsBad;
  r.value = [site = std::move(site)](const Snapshot& snap,
                                     TimeUs now) -> std::optional<double> {
    // Any client's selector refreshing the site counts; take the freshest.
    std::optional<TimeUs> latest;
    for (const auto& [key, e] : snap.entries()) {
      if (e.name != "lod.edge.selector.last_observation_us") continue;
      bool match = false;
      for (const Label& l : e.labels) {
        if (l.first == "site" && l.second == site) match = true;
      }
      if (!match) continue;
      if (!latest || e.gauge > *latest) latest = e.gauge;
    }
    if (!latest) return std::nullopt;
    return static_cast<double>(now - *latest);
  };
  return r;
}

}  // namespace lod::obs
