#include "lod/obs/json.hpp"

#include <cstdint>

namespace lod::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}
}  // namespace

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (i + 4 < s.size()) {
          std::uint32_t cp = 0;
          bool ok = true;
          for (int k = 1; k <= 4; ++k) {
            const int h = hex_val(s[i + static_cast<std::size_t>(k)]);
            if (h < 0) {
              ok = false;
              break;
            }
            cp = (cp << 4) | static_cast<std::uint32_t>(h);
          }
          if (ok) {
            append_utf8(out, cp);
            i += 4;
            break;
          }
        }
        out += 'u';  // malformed \u: keep the escape's literal character
        break;
      }
      default:
        out += s[i];  // covers \" \\ \/ and any unknown escape
    }
  }
  return out;
}

}  // namespace lod::obs
