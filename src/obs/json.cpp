#include "lod/obs/json.hpp"

#include <cstdint>
#include <optional>

namespace lod::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Parse the 4 hex digits of a `\uXXXX` escape whose 'u' sits at \p at.
/// Requires at + 4 < s.size() to be checked by the caller's bounds test;
/// returns nullopt on any non-hex digit.
std::optional<std::uint32_t> parse_u16(std::string_view s, std::size_t at) {
  if (at + 4 >= s.size()) return std::nullopt;  // truncated at end-of-string
  std::uint32_t cp = 0;
  for (std::size_t k = 1; k <= 4; ++k) {
    const int h = hex_val(s[at + k]);
    if (h < 0) return std::nullopt;
    cp = (cp << 4) | static_cast<std::uint32_t>(h);
  }
  return cp;
}
}  // namespace

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        const auto cp = parse_u16(s, i);
        if (!cp) {
          if (i + 4 < s.size()) {
            // Malformed mid-string (non-hex digit): keep the escape's
            // literal character, unknown-escape passthrough style.
            out += 'u';
          } else {
            // Truncated by end-of-string: drop the whole partial escape
            // (its stray hex digits included) rather than decode from
            // bytes past the buffer.
            i = s.size();
          }
          break;
        }
        std::uint32_t code = *cp;
        i += 4;
        if (code >= 0xD800 && code <= 0xDBFF) {
          // High surrogate: valid only as the first half of a \uXXXX\uXXXX
          // pair. Combine with the following low surrogate into one
          // supplementary-plane code point (4-byte UTF-8), not two 3-byte
          // CESU-8 sequences.
          std::optional<std::uint32_t> low;
          if (i + 2 < s.size() && s[i + 1] == '\\' && s[i + 2] == 'u') {
            low = parse_u16(s, i + 2);
          }
          if (low && *low >= 0xDC00 && *low <= 0xDFFF) {
            code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
            i += 6;  // the "\uXXXX" of the low half
          } else {
            code = 0xFFFD;  // unpaired high surrogate
          }
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
          code = 0xFFFD;  // low surrogate with no preceding high half
        }
        append_utf8(out, code);
        break;
      }
      default:
        out += s[i];  // covers \" \\ \/ and any unknown escape
    }
  }
  return out;
}

}  // namespace lod::obs
