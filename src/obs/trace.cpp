#include "lod/obs/trace.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <iterator>

#include "lod/obs/flight.hpp"
#include "lod/obs/json.hpp"

namespace lod::obs {

namespace {
// Keep in enum order; the round-trip test in obs_test walks every value.
constexpr std::array<std::string_view, 30> kEventNames = {
    "packet_send",     "packet_recv",    "packet_drop_loss",
    "packet_drop_queue",
    "msg_retransmit",
    "session_open",    "session_pause",  "session_resume",
    "session_seek",    "session_rate",   "session_stop",
    "session_eos",
    "play_issued",     "render_start",   "stall",
    "slide_fetch",     "slide_show",     "annotation",
    "repair_request",  "repair_resend",  "clock_sync",
    "floor_request",   "floor_grant",    "floor_deny",
    "floor_release",
    "transition_fire",
    "publish",
    "span_begin",      "span_end",
    "slo_violation",
};
}  // namespace

std::string_view to_string(EventType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kEventNames.size() ? kEventNames[i] : "unknown";
}

std::optional<EventType> event_type_from_string(std::string_view s) {
  for (std::size_t i = 0; i < kEventNames.size(); ++i) {
    if (kEventNames[i] == s) return static_cast<EventType>(i);
  }
  return std::nullopt;
}

TraceSink::TraceSink(std::size_t capacity) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void TraceSink::emit(EventType type, std::uint64_t actor, std::int64_t a,
                     std::int64_t b, std::string detail) {
  if (!enabled_) return;
  emit_impl(type, actor, a, b, std::move(detail), 0, 0, 0);
}

void TraceSink::emit_impl(EventType type, std::uint64_t actor, std::int64_t a,
                          std::int64_t b, std::string detail,
                          std::uint64_t trace, std::uint64_t span,
                          std::uint64_t parent) {
  TraceEvent& slot = ring_[head_];
  slot.t = clock_ ? clock_() : 0;
  slot.type = type;
  slot.actor = actor;
  slot.a = a;
  slot.b = b;
  slot.trace = trace;
  slot.span = span;
  slot.parent = parent;
  slot.detail = std::move(detail);
  if (flight_ != nullptr &&
      (type == EventType::kSpanBegin || type == EventType::kSpanEnd)) {
    // Mirror span boundaries into the always-on journal: a = span id,
    // b = trace id, actor truncated to the journal's 32-bit actor slot.
    flight_->record_at(slot.t,
                       type == EventType::kSpanBegin ? FlightType::kSpanBegin
                                                     : FlightType::kSpanEnd,
                       static_cast<std::uint32_t>(actor), span, trace);
  }
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
  ++total_;
}

TraceContext TraceSink::make_trace() {
  if (!enabled_) return {};
  return TraceContext{next_id_++, 0};
}

std::uint64_t TraceSink::begin_span(const TraceContext& ctx, std::string name,
                                    std::uint64_t actor, std::int64_t a,
                                    std::int64_t b) {
  if (!enabled_ || !ctx.valid()) return 0;
  const std::uint64_t id = next_id_++;
  emit_impl(EventType::kSpanBegin, actor, a, b, std::move(name), ctx.trace_id,
            id, ctx.parent_span_id);
  return id;
}

void TraceSink::end_span(const TraceContext& ctx, std::uint64_t span_id,
                         std::string name, std::uint64_t actor, std::int64_t a,
                         std::int64_t b) {
  if (!enabled_ || !ctx.valid() || span_id == 0) return;
  emit_impl(EventType::kSpanEnd, actor, a, b, std::move(name), ctx.trace_id,
            span_id, ctx.parent_span_id);
}

void TraceSink::emit_in(const TraceContext& ctx, EventType type,
                        std::uint64_t actor, std::int64_t a, std::int64_t b,
                        std::string detail) {
  if (!enabled_) return;
  emit_impl(type, actor, a, b, std::move(detail), ctx.trace_id, 0,
            ctx.parent_span_id);
}

void TraceSink::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  total_ = 0;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceSink::events(EventType type) const {
  std::vector<TraceEvent> out;
  for (auto& e : events()) {
    if (e.type == type) out.push_back(std::move(e));
  }
  return out;
}

namespace {
// Find `"key":` in a single JSON line and return the value token after it
// (number, or quoted string contents still escaped). String values are
// delimited by scanning forward and skipping escape pairs — a backwards
// peek at line[j-1] mis-ends on `\\"` (an escaped backslash before the
// closing quote).
std::optional<std::string_view> field(std::string_view line,
                                      std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":";
  const auto at = line.find(pat);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + pat.size();
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != '"') {
      if (line[j] == '\\') ++j;  // consume the escaped character too
      ++j;
    }
    if (j > line.size()) j = line.size();  // trailing lone backslash
    return line.substr(i, j - i);
  }
  std::size_t j = i;
  while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
  return line.substr(i, j - i);
}

template <typename T>
std::optional<T> parse_int(std::string_view s) {
  T v{};
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{}) return std::nullopt;
  return v;
}
}  // namespace

std::vector<TraceEvent> collate_events(
    std::vector<std::vector<TraceEvent>> shards) {
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  out.reserve(total);
  for (auto& s : shards) {
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  }
  // Concatenation put shards in index order and kept each shard's emit
  // order; a stable sort by timestamp then yields exactly
  // (t, shard, emit order).
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t < b.t;
                   });
  return out;
}

std::string TraceSink::to_jsonl() const { return events_to_jsonl(events()); }

std::string events_to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const auto& e : events) {
    out += "{\"t\":";
    out += std::to_string(e.t);
    out += ",\"type\":\"";
    out += to_string(e.type);
    out += "\",\"actor\":";
    out += std::to_string(e.actor);
    out += ",\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    if (e.trace != 0) {
      // Causal coordinates only when present keeps untraced lines stable
      // for pre-span consumers.
      out += ",\"trace\":";
      out += std::to_string(e.trace);
      out += ",\"span\":";
      out += std::to_string(e.span);
      out += ",\"parent\":";
      out += std::to_string(e.parent);
    }
    out += ",\"detail\":\"";
    append_json_escaped(out, e.detail);
    out += "\"}\n";
  }
  return out;
}

std::vector<TraceEvent> TraceSink::parse_jsonl(std::string_view text) {
  std::vector<TraceEvent> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    const auto t = field(line, "t");
    const auto type = field(line, "type");
    if (!t || !type) continue;
    const auto et = event_type_from_string(*type);
    const auto tv = parse_int<TimeUs>(*t);
    if (!et || !tv) continue;

    TraceEvent e;
    e.t = *tv;
    e.type = *et;
    if (const auto v = field(line, "actor")) {
      e.actor = parse_int<std::uint64_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "a")) {
      e.a = parse_int<std::int64_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "b")) {
      e.b = parse_int<std::int64_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "trace")) {
      e.trace = parse_int<std::uint64_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "span")) {
      e.span = parse_int<std::uint64_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "parent")) {
      e.parent = parse_int<std::uint64_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "detail")) e.detail = json_unescape(*v);
    out.push_back(std::move(e));
  }
  return out;
}

std::optional<TraceEvent> first_event(const std::vector<TraceEvent>& events,
                                      EventType type,
                                      std::optional<std::uint64_t> actor) {
  for (const auto& e : events) {
    if (e.type == type && (!actor || e.actor == *actor)) return e;
  }
  return std::nullopt;
}

std::optional<TimeUs> span_between(const std::vector<TraceEvent>& events,
                                   EventType from, EventType to,
                                   std::optional<std::uint64_t> actor) {
  std::optional<TimeUs> start;
  for (const auto& e : events) {
    if (actor && e.actor != *actor) continue;
    if (!start && e.type == from) {
      start = e.t;
    } else if (start && e.type == to && e.t >= *start) {
      return e.t - *start;
    }
  }
  return std::nullopt;
}

std::vector<TimeUs> span_latencies(const std::vector<TraceEvent>& events,
                                   EventType from, EventType to,
                                   std::optional<std::uint64_t> actor) {
  std::vector<TimeUs> out;
  TimeUs start = 0;
  bool open = false;
  for (const auto& e : events) {
    if (actor && e.actor != *actor) continue;
    if (e.type == from) {
      // A repeated `from` restarts the span (latest request wins).
      start = e.t;
      open = true;
    } else if (open && e.type == to && e.t >= start) {
      out.push_back(e.t - start);
      open = false;
    }
  }
  return out;
}

}  // namespace lod::obs
