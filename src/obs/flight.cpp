#include "lod/obs/flight.hpp"

#include <algorithm>
#include <array>
#include <charconv>

#include "lod/obs/json.hpp"

namespace lod::obs {

namespace {

// Keep in enum order; the round-trip test in obs_flight_test walks every
// value.
constexpr std::array<std::string_view, 12> kFlightNames = {
    "span_begin", "span_end",     "sim_event",  "net_event",
    "sync_verdict", "frame_drop", "slo_violation", "cache_miss",
    "failover",   "resync",       "dump",       "input",
};

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Find `"key":` in one JSON line; return the raw value token after it.
std::optional<std::string_view> field(std::string_view line,
                                      std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":";
  const auto at = line.find(pat);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + pat.size();
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    ++i;
    const auto j = line.find('"', i);
    if (j == std::string_view::npos) return std::nullopt;
    return line.substr(i, j - i);
  }
  std::size_t j = i;
  while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
  return line.substr(i, j - i);
}

template <typename T>
std::optional<T> parse_int(std::string_view s) {
  T v{};
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{}) return std::nullopt;
  return v;
}

void append_event_json(std::string& out, const FlightEvent& e) {
  out += "{\"t\":";
  out += std::to_string(e.t);
  out += ",\"ft\":\"";
  out += to_string(e.type);
  out += "\",\"lane\":";
  out += std::to_string(e.lane);
  out += ",\"actor\":";
  out += std::to_string(e.actor);
  out += ",\"a\":";
  out += std::to_string(e.a);
  out += ",\"b\":";
  out += std::to_string(e.b);
  out += "}\n";
}

}  // namespace

std::string_view to_string(FlightType t) {
  const auto i = static_cast<std::size_t>(t);
  return i < kFlightNames.size() ? kFlightNames[i] : "unknown";
}

std::optional<FlightType> flight_type_from_string(std::string_view s) {
  for (std::size_t i = 0; i < kFlightNames.size(); ++i) {
    if (kFlightNames[i] == s) return static_cast<FlightType>(i);
  }
  return std::nullopt;
}

FlightRecorder::FlightRecorder() : FlightRecorder(Config()) {}

FlightRecorder::FlightRecorder(Config cfg) {
  const std::size_t lanes = pow2_at_least(cfg.lanes == 0 ? 1 : cfg.lanes);
  const std::size_t cap = pow2_at_least(cfg.capacity == 0 ? 1 : cfg.capacity);
  lane_mask_ = lanes - 1;
  slot_mask_ = cap - 1;
  lanes_ = std::make_unique<Lane[]>(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    // Value-initialized atomics: every word starts at 0, every head at 0.
    lanes_[i].words =
        std::make_unique<std::atomic<std::uint64_t>[]>(cap * 4);
  }
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i <= lane_mask_; ++i) {
    sum += lanes_[i].head.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t FlightRecorder::dropped() const {
  // Once a lane wraps, the readable window is capacity-1 (see events():
  // the oldest slot may be mid-overwrite by an unpublished write at head).
  const std::uint64_t window = slot_mask_;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i <= lane_mask_; ++i) {
    const std::uint64_t h = lanes_[i].head.load(std::memory_order_relaxed);
    sum += h > window ? h - window : 0;
  }
  return sum;
}

std::vector<FlightEvent> FlightRecorder::events(std::size_t lane) const {
  const Lane& ln = lanes_[lane & lane_mask_];
  const std::uint64_t cap = slot_mask_ + 1;
  const std::uint64_t h1 = ln.head.load(std::memory_order_acquire);
  // A writer publishes head AFTER filling the slot, so when head == h the
  // write of index h may still be in flight — and its slot is the one index
  // h1 - capacity lives in. The oldest provably-stable event is therefore
  // h1 - (capacity - 1): a full ring yields capacity-1 events.
  const std::uint64_t first = h1 >= cap ? h1 - (cap - 1) : 0;

  struct Raw {
    std::uint64_t idx;
    std::uint64_t w[4];
  };
  std::vector<Raw> raw;
  raw.reserve(static_cast<std::size_t>(h1 - first));
  for (std::uint64_t i = first; i < h1; ++i) {
    const std::atomic<std::uint64_t>* w =
        ln.words.get() + ((i & slot_mask_) << 2);
    Raw r;
    r.idx = i;
    for (int k = 0; k < 4; ++k) {
      r.w[k] = w[k].load(std::memory_order_relaxed);
    }
    raw.push_back(r);
  }
  // Overwrite guard: the writer may have lapped us mid-scan. After the
  // scan, any event whose slot the writer could have touched — old index
  // <= h2 - capacity, where h2 is the head now — is discarded as torn.
  const std::uint64_t h2 = ln.head.load(std::memory_order_acquire);
  std::vector<FlightEvent> out;
  out.reserve(raw.size());
  for (const Raw& r : raw) {
    if (r.idx + cap <= h2) continue;
    FlightEvent e;
    e.t = static_cast<TimeUs>(r.w[0]);
    e.type = static_cast<FlightType>((r.w[1] >> 48) & 0xFF);
    e.lane = static_cast<std::uint16_t>((r.w[1] >> 32) & 0xFFFF);
    e.actor = static_cast<std::uint32_t>(r.w[1]);
    e.a = r.w[2];
    e.b = r.w[3];
    out.push_back(e);
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  for (std::size_t i = 0; i <= lane_mask_; ++i) {
    auto lane_events = events(i);
    out.insert(out.end(), lane_events.begin(), lane_events.end());
  }
  // Lanes were appended in index order and each is time-ordered, so a
  // stable sort yields (t, lane, intra-lane order).
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.t < b.t;
                   });
  return out;
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for (const FlightEvent& e : events()) append_event_json(out, e);
  return out;
}

std::vector<FlightEvent> FlightRecorder::parse_jsonl(std::string_view text) {
  std::vector<FlightEvent> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    const auto t = field(line, "t");
    const auto ft = field(line, "ft");
    if (!t || !ft) continue;
    const auto type = flight_type_from_string(*ft);
    const auto tv = parse_int<TimeUs>(*t);
    if (!type || !tv) continue;

    FlightEvent e;
    e.t = *tv;
    e.type = *type;
    if (const auto v = field(line, "lane")) {
      e.lane = parse_int<std::uint16_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "actor")) {
      e.actor = parse_int<std::uint32_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "a")) {
      e.a = parse_int<std::uint64_t>(*v).value_or(0);
    }
    if (const auto v = field(line, "b")) {
      e.b = parse_int<std::uint64_t>(*v).value_or(0);
    }
    out.push_back(e);
  }
  return out;
}

void FlightRecorder::on_dump(std::function<void(const FlightDump&)> sink) {
  std::lock_guard lk(dump_mu_);
  sink_ = std::move(sink);
}

std::uint64_t FlightRecorder::trigger_dump(std::string reason) {
  const std::uint64_t ordinal =
      dumps_.fetch_add(1, std::memory_order_relaxed) + 1;
  record(FlightType::kDump, 0, ordinal, 0);

  std::function<void(const FlightDump&)> sink;
  {
    std::lock_guard lk(dump_mu_);
    sink = sink_;
  }
  if (!sink) return ordinal;

  FlightDump d;
  d.reason = std::move(reason);
  d.t = clock_ ? clock_() : 0;
  d.dropped = dropped();
  std::string body;
  std::size_t n = 0;
  for (const FlightEvent& e : events()) {
    append_event_json(body, e);
    ++n;
  }
  d.events = n;
  d.jsonl = flight_dump_meta(d) + body;
  {
    std::lock_guard lk(dump_mu_);
    last_ = d;
  }
  sink(d);
  return ordinal;
}

FlightDump FlightRecorder::last_dump() const {
  std::lock_guard lk(dump_mu_);
  return last_;
}

std::string flight_dump_meta(const FlightDump& d) {
  std::string out = "{\"flight_dump\":{\"reason\":\"";
  append_json_escaped(out, d.reason);
  out += "\",\"t\":";
  out += std::to_string(d.t);
  out += ",\"events\":";
  out += std::to_string(d.events);
  out += ",\"dropped\":";
  out += std::to_string(d.dropped);
  out += "}}\n";
  return out;
}

}  // namespace lod::obs
