// Fig. 4 — "Action of deleting a node S5 (level 1)."
//
// "When we perform the operation with 'deleting the S5 node', the S5's
// children will be adopted by S5's siblings S1." Starting from the Fig. 3
// result, deleting S5 hands S3 to S1 and the level accounting follows.

#include <cstdio>

#include "lod/contenttree/content_tree.hpp"

#include "bench_json.hpp"

using namespace lod::contenttree;
using lod::net::sec;

static int failures = 0;
static void check(const char* what, long long paper, long long measured) {
  const bool ok = paper == measured;
  if (!ok) ++failures;
  std::printf("  %-30s expected=%-6lld measured=%-6lld %s\n", what, paper,
              measured, ok ? "ok" : "MISMATCH");
}

int main() {
  std::printf("=== Fig. 4: delete S5 (level 1) ===\n\n");

  // (a) the tree after Fig. 3's insert.
  ContentTree t;
  t.add({"S0", sec(20), ""}, 0);
  const NodeId s1 = t.add({"S1", sec(40), ""}, 1);
  t.add({"S2", sec(60), ""}, 2);
  t.attach_child(s1, {"S4", sec(40), ""});
  const NodeId s3 = t.add({"S3", sec(20), ""}, 1);
  const NodeId s5 = t.insert_above(s3, {"S5", sec(20), ""});
  std::printf("(a) original:\n%s\n", t.to_string().c_str());

  // (b) delete S5: its child S3 is adopted by its sibling S1.
  t.remove(s5);
  std::printf("(b) after deleting S5:\n%s\n", t.to_string().c_str());

  check("S3 adopted by sibling S1", 1,
        t.parent(s3) == s1 ? 1 : 0);
  check("S3 keeps its level (2)", 2, t.level(s3));
  check("highestLevel", 2, t.highest_level());
  check("LevelNodes[0]->value", 20,
        static_cast<long long>(t.level_value(0).seconds()));
  check("LevelNodes[1]->value", 40,
        static_cast<long long>(t.level_value(1).seconds()));
  check("LevelNodes[2]->value", 120,
        static_cast<long long>(t.level_value(2).seconds()));
  check("tree invariants hold", 1, t.check_invariants() ? 1 : 0);

  std::printf("\n%d mismatches\n", failures);
    ::lod::bench::emit_json("bench_fig4_delete_node", "mismatches", failures);
  return failures == 0 ? 0 : 1;
}
