// Obs — the observability layer's zero-overhead-when-disabled contract.
//
// The playout engine is the hottest instrumented loop in the stack (P1 pushes
// it to 10^4 firings per play). This bench times the same chain playout five
// ways: the plain 3-arg play(), play() with a default-initialized PlayObs
// wired to a DISABLED trace sink plus a live registry counter, play() with
// the sink enabled, and play() with the flight recorder journaling every
// firing — recorder enabled and recorder disabled. The contract: both the
// disabled path AND the recorder-ENABLED path cost < 2% over the
// un-instrumented engine (the journal must be cheap enough to fly always-on).
// Exit is nonzero when the contract is violated.

#include <chrono>
#include <cstdio>
#include <limits>

#include "lod/core/ocpn.hpp"
#include "lod/obs/hub.hpp"

#include "bench_json.hpp"

using namespace lod;
using namespace lod::core;
using lod::net::sec;

namespace {

TemporalSpec chain_spec(int n) {
  TemporalSpec s = TemporalSpec::object("o0", 0, sec(1));
  for (int i = 1; i < n; ++i) {
    s = TemporalSpec::relate(Relation::kMeets, std::move(s),
                             TemporalSpec::object("o" + std::to_string(i), 0,
                                                  sec(1)));
  }
  return s;
}

/// Min-of-reps wall time for one playout configuration. Min (not mean) is
/// the noise-robust statistic for a fixed deterministic workload.
template <typename Fn>
double min_seconds(Fn&& fn, int reps) {
  double best = std::numeric_limits<double>::max();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  constexpr int kChain = 10'000;
  constexpr int kReps = 40;
  constexpr std::size_t kMaxSteps = 1'000'000;

  const auto compiled = build_ocpn(chain_spec(kChain));
  const Marking m0 = compiled.initial_marking();

  obs::Hub hub;
  PlayObs disabled;  // sink present but off — the production default
  disabled.trace = &hub.trace();
  disabled.fired = hub.metrics().counter("lod.petri.transitions_fired");

  // Warm caches and verify the three paths agree on the playout itself.
  const auto ref = play(compiled.net, m0);
  const auto instrumented = play(compiled.net, m0, kMaxSteps, disabled);
  if (instrumented.firings.size() != ref.firings.size() ||
      instrumented.makespan.us != ref.makespan.us) {
    std::printf("instrumented playout diverged from baseline\n");
    return 1;
  }

  // The flight configuration: same disabled trace sink, plus the journal
  // recording one dispatch-lane event per firing.
  PlayObs flighted = disabled;
  flighted.flight = &hub.flight();

  // Interleave the configurations so frequency drift hits all five equally;
  // a few back-to-back plays per sample keep the min robust on noisy
  // shared runners, where single-play samples jitter by several percent.
  constexpr int kPlaysPerSample = 3;
  std::int64_t sink_makespan = 0;
  double base_s = std::numeric_limits<double>::max();
  double off_s = std::numeric_limits<double>::max();
  double on_s = std::numeric_limits<double>::max();
  double flight_s = std::numeric_limits<double>::max();
  double flight_off_s = std::numeric_limits<double>::max();
  for (int round = 0; round < kReps; ++round) {
    base_s = std::min(base_s, min_seconds([&] {
               sink_makespan += play(compiled.net, m0).makespan.us;
             }, kPlaysPerSample));
    off_s = std::min(off_s, min_seconds([&] {
              sink_makespan +=
                  play(compiled.net, m0, kMaxSteps, disabled).makespan.us;
            }, kPlaysPerSample));
    hub.trace().set_enabled(true);
    on_s = std::min(on_s, min_seconds([&] {
             sink_makespan +=
                 play(compiled.net, m0, kMaxSteps, disabled).makespan.us;
           }, kPlaysPerSample));
    hub.trace().set_enabled(false);
    flight_s = std::min(flight_s, min_seconds([&] {
                 sink_makespan +=
                     play(compiled.net, m0, kMaxSteps, flighted).makespan.us;
               }, kPlaysPerSample));
    hub.flight().set_enabled(false);
    flight_off_s =
        std::min(flight_off_s, min_seconds([&] {
          sink_makespan +=
              play(compiled.net, m0, kMaxSteps, flighted).makespan.us;
        }, kPlaysPerSample));
    hub.flight().set_enabled(true);
  }

  const double overhead_off = off_s / base_s - 1.0;
  const double overhead_on = on_s / base_s - 1.0;
  const double overhead_flight = flight_s / base_s - 1.0;
  const double overhead_flight_off = flight_off_s / base_s - 1.0;
  std::printf("=== obs overhead on the playout engine (%d-object chain) ===\n\n",
              kChain);
  std::printf("%-26s %10s %10s\n", "configuration", "min play", "overhead");
  std::printf("%-26s %8.3fms %10s\n", "no instrumentation", base_s * 1e3, "-");
  std::printf("%-26s %8.3fms %9.1f%%\n", "sink attached, disabled",
              off_s * 1e3, overhead_off * 100);
  std::printf("%-26s %8.3fms %9.1f%%\n", "sink enabled", on_s * 1e3,
              overhead_on * 100);
  std::printf("%-26s %8.3fms %9.1f%%\n", "flight recorder enabled",
              flight_s * 1e3, overhead_flight * 100);
  std::printf("%-26s %8.3fms %9.1f%%\n", "flight recorder disabled",
              flight_off_s * 1e3, overhead_flight_off * 100);
  std::printf("\n(counter lod.petri.transitions_fired = %llu; checksum %lld; "
              "journal %llu events)\n",
              static_cast<unsigned long long>(disabled.fired.value()),
              static_cast<long long>(sink_makespan),
              static_cast<unsigned long long>(hub.flight().total_recorded()));

  const bool ok = overhead_off < 0.02 && overhead_flight < 0.02;
  std::printf("\ncontract (disabled-path AND flight-enabled overhead < 2%%): "
              "%s\n",
              ok ? "holds" : "VIOLATED");
  ::lod::bench::emit_json(
      "bench_obs_overhead", "disabled_overhead_pct", overhead_off * 100,
      {{"flight_enabled_overhead_pct", overhead_flight * 100},
       {"flight_disabled_overhead_pct", overhead_flight_off * 100}});
  return ok ? 0 : 1;
}
