// E1 — the distributed edge-replica tier.
//
// §3 extends the timed Petri net with per-channel delay places for
// distributed sites; operationally, a lecture served from a replica on the
// client's LAN pays LAN delay where an origin session pays LAN + WAN. This
// bench quantifies that: startup (preroll fill) via the origin vs via warm
// edge replicas, then a sweep of the edge cache budget and prefetch depth
// showing what keeps the hit rate high enough to matter.
//
// Topology per client: client --LAN(2ms)-- edge --WAN(60ms)-- origin. The
// client's route to the origin passes THROUGH its edge host, so the
// comparison holds the path constant and varies only where the session
// terminates.

#include <cstdio>
#include <memory>
#include <vector>

#include "lod/edge/edge_node.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"

#include "bench_json.hpp"

using namespace lod;

namespace {

struct Deployment {
  net::Simulator sim;
  net::Network network{sim, 77};
  net::HostId origin{};
  std::vector<net::HostId> edge_hosts;
  std::vector<net::HostId> clients;
  std::unique_ptr<streaming::StreamingServer> server;
  std::unique_ptr<edge::OriginGateway> gateway;
  std::vector<std::unique_ptr<edge::EdgeNode>> edges;

  Deployment(int n_edges, edge::EdgeConfig ec) {
    origin = network.add_host("origin");
    for (int i = 0; i < n_edges; ++i) {
      const auto e = network.add_host("edge" + std::to_string(i));
      const auto c = network.add_host("client" + std::to_string(i));
      net::LinkConfig wan;
      wan.bandwidth_bps = 20'000'000;
      wan.latency = net::msec(60);
      network.add_link(origin, e, wan);
      net::LinkConfig lan;
      lan.bandwidth_bps = 10'000'000;
      lan.latency = net::msec(2);
      network.add_link(e, c, lan);
      edge_hosts.push_back(e);
      clients.push_back(c);
    }
    server = std::make_unique<streaming::StreamingServer>(network, origin);
    gateway = std::make_unique<edge::OriginGateway>(network, *server);
    ec.origin = origin;
    for (const auto e : edge_hosts) {
      edges.push_back(std::make_unique<edge::EdgeNode>(network, e, ec));
    }
  }

  void publish(const std::string& name, net::SimDuration len) {
    streaming::EncodeJob job;
    job.profile = *media::find_profile("Video 250k DSL/cable");
    job.preroll = net::msec(2000);
    media::LectureVideoSource v(len, job.profile.fps, job.profile.width,
                                job.profile.height, 7);
    media::LectureAudioSource a(len, job.profile.audio_sample_rate());
    server->publish(name, streaming::encode_lecture(job, v, a, {}).file);
  }

  streaming::PlayerConfig player_cfg(net::Port base) {
    streaming::PlayerConfig cfg;
    cfg.model = streaming::SyncModel::kEtpn;
    cfg.ctl_port = base;
    cfg.data_port = static_cast<net::Port>(base + 1);
    cfg.web_server = origin;
    return cfg;
  }
};

/// Mean startup delay across one player per client, everyone starting at
/// once. Edges are pre-warmed by a throwaway session each (the steady state
/// of a popular lecture).
double mean_startup_s(int n_edges, bool via_edge) {
  Deployment d(n_edges, edge::EdgeConfig{});
  d.publish("lec", net::sec(20));

  if (via_edge) {
    std::vector<std::unique_ptr<streaming::Player>> warmers;
    for (int i = 0; i < n_edges; ++i) {
      warmers.push_back(std::make_unique<streaming::Player>(
          d.network, d.clients[i], d.player_cfg(6000)));
      warmers.back()->open_and_play(d.edge_hosts[i], "lec");
    }
    d.sim.run_until(d.sim.now() + net::sec(60));
  }

  std::vector<std::unique_ptr<streaming::Player>> players;
  for (int i = 0; i < n_edges; ++i) {
    players.push_back(std::make_unique<streaming::Player>(
        d.network, d.clients[i], d.player_cfg(5000)));
    players.back()->open_and_play(via_edge ? d.edge_hosts[i] : d.origin,
                                  "lec");
  }
  d.sim.run_until(d.sim.now() + net::sec(60));

  double total = 0;
  for (const auto& p : players) {
    if (!p->finished() || p->startup_delay().us < 0) return -1;
    total += p->startup_delay().seconds();
  }
  return total / n_edges;
}

struct SweepRow {
  double hit_rate;
  std::uint64_t demand, prefetch, evictions;
  std::size_t stalls;
};

/// One client playing a lecture through one (cold) edge, sequentially.
SweepRow sweep(std::size_t budget_bytes, std::uint32_t depth) {
  edge::EdgeConfig ec;
  ec.cache_budget_bytes = budget_bytes;
  ec.prefetch_depth = depth;
  Deployment d(1, ec);
  d.publish("lec", net::sec(60));
  streaming::Player p(d.network, d.clients[0], d.player_cfg(5000));
  p.open_and_play(d.edge_hosts[0], "lec");
  d.sim.run_until(d.sim.now() + net::sec(180));

  const auto& cache = d.edges[0]->cache();
  return SweepRow{p.finished() ? cache.hit_rate() : -1.0,
                  d.edges[0]->demand_fetches(), d.edges[0]->prefetch_fetches(),
                  cache.evictions(), p.stalls().size()};
}

}  // namespace

int main() {
  std::printf("=== E1: edge replica tier (LAN 2ms / WAN 60ms) ===\n\n");

  std::printf("startup (preroll fill), origin-only vs warm edges:\n");
  std::printf("%-8s %14s %14s\n", "edges", "via origin", "via warm edge");
  bool shape_ok = true;
  double edge1 = 0, origin1 = 0;
  for (const int n : {1, 2, 4}) {
    const double via_origin = mean_startup_s(n, false);
    const double via_edge = mean_startup_s(n, true);
    if (n == 1) {
      origin1 = via_origin;
      edge1 = via_edge;
    }
    std::printf("%-8d %13.2fs %13.2fs\n", n, via_origin, via_edge);
    // The acceptance shape: at equal link parameters every warm-edge
    // configuration starts strictly faster than origin service.
    shape_ok = shape_ok && via_edge > 0 && via_origin > 0 &&
               via_edge < via_origin;
  }

  std::printf("\ncold edge, sequential 60s playout — cache budget x prefetch "
              "depth:\n");
  std::printf("%-10s %-7s %9s %8s %9s %10s %7s\n", "budget", "depth",
              "hit rate", "demand", "prefetch", "evictions", "stalls");
  double default_hit_rate = 0;
  for (const std::size_t kib : {256u, 1024u, 16u * 1024u}) {
    for (const std::uint32_t depth : {0u, 2u, 4u}) {
      const SweepRow r = sweep(kib * 1024, depth);
      std::printf("%7zuKiB %-7u %8.1f%% %8llu %9llu %10llu %7zu\n", kib, depth,
                  r.hit_rate * 100, static_cast<unsigned long long>(r.demand),
                  static_cast<unsigned long long>(r.prefetch),
                  static_cast<unsigned long long>(r.evictions), r.stalls);
      shape_ok = shape_ok && r.hit_rate >= 0;
      if (kib == 16u * 1024u && depth == 4u) default_hit_rate = r.hit_rate;
      // Prefetch is what turns the cache into a relay: with it on, even a
      // budget far below the file size serves >90% from cache, because the
      // warm window rides ahead of the playhead.
      if (depth >= 2) shape_ok = shape_ok && r.hit_rate > 0.9;
    }
  }

  std::printf("\nshape check (warm edge < origin startup at 1/2/4 edges;\n"
              "prefetch>=2 keeps hit rate >90%% at every budget): %s\n",
              shape_ok ? "holds" : "VIOLATED");
  ::lod::bench::emit_json("bench_e1_edge_cache", "startup_speedup",
                          edge1 > 0 ? origin1 / edge1 : 0.0);
  return shape_ok ? 0 : 1;
}
