// §2.3 — "An example of building a tree": the paper's exact worked example.
//
// The paper reports, step by step:
//   Step 1 (add S0): highestLevel = 0; LevelNodes[0]->value = 20
//   Step 2 (add S1): highestLevel = 1; LevelNodes[1]->value = 40
//   Step 3 (add S2): highestLevel = 2; LevelNodes[2]->value = 60
//   Step 4 (add S4): highestLevel = 2; LevelNodes[1]->value = 60;
//                                      LevelNodes[2]->value = 100
//
// This bench replays the build and prints paper value vs measured value for
// every reported quantity.

#include <cstdio>

#include "lod/contenttree/content_tree.hpp"

#include "bench_json.hpp"

using namespace lod::contenttree;
using lod::net::sec;
using lod::net::SimDuration;

static int failures = 0;

static void check(const char* what, long long paper, long long measured) {
  const bool ok = paper == measured;
  if (!ok) ++failures;
  std::printf("  %-26s paper=%-6lld measured=%-6lld %s\n", what, paper,
              measured, ok ? "ok" : "MISMATCH");
}

int main() {
  std::printf("=== Sec. 2.3: building the example content tree ===\n\n");
  ContentTree t;

  std::printf("Step 1: add S0 (20, level 0)\n");
  t.add({"S0", sec(20), ""}, 0);
  check("highestLevel", 0, t.highest_level());
  check("LevelNodes[0]->value", 20,
        static_cast<long long>(t.level_value(0).seconds()));

  std::printf("Step 2: add S1 (40, level 1)\n");
  const NodeId s1 = t.add({"S1", sec(40), ""}, 1);
  check("highestLevel", 1, t.highest_level());
  check("LevelNodes[1]->value", 40,
        static_cast<long long>(t.level_value(1).seconds()));

  std::printf("Step 3: add S2 (60, level 2)\n");
  t.add({"S2", sec(60), ""}, 2);
  check("highestLevel", 2, t.highest_level());
  check("LevelNodes[2]->value", 60,
        static_cast<long long>(t.level_value(2).seconds()));

  std::printf("Step 4: add S4 (40, level 2) and S3 (20, level 1)\n");
  t.attach_child(s1, {"S4", sec(40), ""});
  t.add({"S3", sec(20), ""}, 1);
  check("highestLevel", 2, t.highest_level());
  check("LevelNodes[1]->value", 60,
        static_cast<long long>(t.level_value(1).seconds()));
  check("LevelNodes[2]->value", 100,
        static_cast<long long>(t.level_value(2).seconds()));

  std::printf("\nresulting tree:\n%s", t.to_string().c_str());
  std::printf("\n%d mismatches against the paper's reported values\n",
              failures);
    ::lod::bench::emit_json("bench_sec23_build_tree", "mismatches", failures);
  return failures == 0 ? 0 : 1;
}
