// Ablation A3 — audio superframe grouping.
//
// A 16 kb/s ACELP frame is 40 bytes; shipped one per container payload it
// drowns in per-payload framing (~23 modeled bytes each) and the fixed-size
// packets padding. Grouping frames into superframes amortizes the overhead —
// at the cost of superframe-sized loss granularity and latency. This bench
// sweeps the grouping window on the voice profile and reports container
// efficiency, which is what made the 28.8k modem tier feasible at all.

#include <cstdio>

#include "lod/streaming/encoder.hpp"

#include "bench_json.hpp"

using namespace lod;

int main() {
  std::printf("=== A3: audio superframe grouping (22 kb/s voice profile) ===\n\n");
  std::printf("%12s %9s %11s %12s %10s\n", "superframe", "packets",
              "wire kb/s", "overhead", "loss unit");

  const auto media_seconds = 120;
  bool monotone = true;
  double prev_rate = 1e18;
  for (const std::int64_t ms : {0LL, 20LL, 60LL, 200LL, 500LL, 1000LL}) {
    streaming::EncodeJob job;
    job.profile = *media::find_profile("Audio 28.8k (voice)");
    job.audio_superframe = net::msec(ms);
    media::LectureVideoSource v(net::sec(0), 1, 16, 16);
    media::LectureAudioSource a(net::sec(media_seconds), 8000);
    const auto enc = streaming::encode_lecture(job, v, a, {});

    // Payload (codec) bytes vs what actually crosses the wire: fixed-size
    // packets + per-packet session/UDP framing.
    std::uint64_t media_bytes = 0;
    for (const auto& p : enc.file.packets) {
      for (const auto& pl : p.payloads) media_bytes += pl.data.size();
    }
    const double wire_bytes =
        static_cast<double>(enc.file.packets.size()) * (1400.0 + 20.0 + 28.0);
    const double wire_rate_kbps = wire_bytes * 8.0 / media_seconds / 1000.0;
    const double overhead =
        (wire_bytes - static_cast<double>(media_bytes)) / wire_bytes * 100.0;
    std::printf("%10lldms %9zu %9.1f %11.1f%% %8lldms\n",
                static_cast<long long>(ms), enc.file.packets.size(),
                wire_rate_kbps, overhead,
                static_cast<long long>(ms == 0 ? 20 : ms));
    if (ms > 0) monotone = monotone && wire_rate_kbps <= prev_rate + 0.01;
    prev_rate = wire_rate_kbps;
  }
  std::printf(
      "\nReading: without grouping the voice stream needs >2x its codec\n"
      "rate on the wire; the 200 ms default brings overhead near the\n"
      "floor while keeping a loss to one fifth of a second of speech.\n");
  std::printf("shape check (grouping monotonically cuts wire rate): %s\n",
              monotone ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_a3_audio_packing", "shape_holds",
                        monotone ? 1.0 : 0.0);
  return monotone ? 0 : 1;
}
