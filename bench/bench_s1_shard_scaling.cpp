// S1 — sharded load-harness scaling.
//
// Runs the SAME 1000-session mixed workload (straight playout, pause/seek
// storms, mid-session failover, floor contention — see lod::LoadGen) at 1, 2
// and 4 simulator shards and measures the parallel critical path: the
// maximum per-shard CPU time, i.e. the run's wall time on a machine with one
// uncontended core per shard. CPU time (not wall time) is the honest basis
// here because CI boxes often have fewer cores than shards, and thread
// timesharing would otherwise hide the speedup the architecture provides.
//
// Shape gates (exit nonzero on violation):
//   1. every shard count runs all 1000 sessions and finishes >= 90% of them;
//   2. two 4-shard runs from the same root seed produce byte-identical
//      merged snapshots (the determinism contract of ShardedRunner);
//   3. critical-path speedup at 4 shards vs 1 shard is >= 3x.

#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "lod/lod/loadgen.hpp"
#include "lod/obs/export.hpp"

namespace {

constexpr std::uint64_t kRootSeed = 0xC0FFEE5EEDULL;

lod::lod::WorkloadSpec make_spec() {
  lod::lod::WorkloadSpec spec;
  spec.sessions = 1000;
  spec.client_hosts = 16;
  return spec;
}

}  // namespace

int main() {
  using lod::lod::LoadGen;

  const auto spec = make_spec();
  std::printf("S1: sharded load harness, %zu mixed sessions, root seed %#llx\n",
              spec.sessions,
              static_cast<unsigned long long>(kRootSeed));
  std::printf("%8s %16s %12s %10s %10s %10s\n", "shards", "critical_ms",
              "wall_ms", "events", "finished", "speedup");

  bool ok = true;
  double base_critical_ms = 0.0;
  double speedup4 = 0.0;
  std::string snapshot_4shards;

  for (const std::size_t shards : {1u, 2u, 4u}) {
    const auto r = LoadGen::run_sharded(spec, shards, kRootSeed);
    const double critical_ms =
        static_cast<double>(r.critical_path_us) / 1000.0;
    const double wall_ms = static_cast<double>(r.wall_us) / 1000.0;
    const auto sessions = r.merged.counter("lod.loadgen.sessions");
    const auto finished = r.merged.counter("lod.loadgen.finished");
    if (shards == 1) base_critical_ms = critical_ms;
    const double speedup =
        critical_ms > 0.0 ? base_critical_ms / critical_ms : 0.0;
    if (shards == 4) {
      speedup4 = speedup;
      snapshot_4shards = lod::obs::to_json(r.merged);
    }
    std::printf("%8zu %16.1f %12.1f %10llu %10llu %9.2fx\n", shards,
                critical_ms, wall_ms,
                static_cast<unsigned long long>(r.total_events_fired()),
                static_cast<unsigned long long>(finished), speedup);

    if (sessions != spec.sessions) {
      std::printf("FAIL: %zu shards ran %llu sessions, expected %zu\n",
                  shards, static_cast<unsigned long long>(sessions),
                  spec.sessions);
      ok = false;
    }
    if (finished * 10 < sessions * 9) {
      std::printf("FAIL: %zu shards finished %llu/%llu sessions (< 90%%)\n",
                  shards, static_cast<unsigned long long>(finished),
                  static_cast<unsigned long long>(sessions));
      ok = false;
    }
  }

  // Determinism: an identical root seed must reproduce the 4-shard merge
  // byte for byte.
  {
    const auto again = LoadGen::run_sharded(spec, 4, kRootSeed);
    const bool identical = lod::obs::to_json(again.merged) == snapshot_4shards;
    std::printf("determinism: repeated 4-shard run merged snapshot %s\n",
                identical ? "byte-identical" : "DIFFERS");
    if (!identical) ok = false;
  }

  if (speedup4 < 3.0) {
    std::printf("FAIL: 4-shard critical-path speedup %.2fx < 3x\n", speedup4);
    ok = false;
  }

  lod::bench::emit_json("bench_s1_shard_scaling", "speedup_4shards", speedup4);
  return ok ? 0 : 1;
}
