// Fig. 3 — "Action of insert a node S5 (level 1) into the content tree."
//
// Starting from the §2.3 tree (LevelNodes = {20, 60, 100}), inserting S5
// (20 s) at level 1 splices it above the leaf S3, pushing S3 one level down.
// The paper reports afterwards:
//   highestLevel = 2;
//   LevelNodes[0]->value = 20; LevelNodes[1]->value = 60;
//   LevelNodes[2]->value = 120;

#include <cstdio>

#include "lod/contenttree/content_tree.hpp"

#include "bench_json.hpp"

using namespace lod::contenttree;
using lod::net::sec;

static int failures = 0;
static void check(const char* what, long long paper, long long measured) {
  const bool ok = paper == measured;
  if (!ok) ++failures;
  std::printf("  %-26s paper=%-6lld measured=%-6lld %s\n", what, paper,
              measured, ok ? "ok" : "MISMATCH");
}

int main() {
  std::printf("=== Fig. 3: insert S5 (level 1) ===\n\n");

  // (a) the original tree from Sec. 2.3.
  ContentTree t;
  t.add({"S0", sec(20), ""}, 0);
  const NodeId s1 = t.add({"S1", sec(40), ""}, 1);
  t.add({"S2", sec(60), ""}, 2);
  t.attach_child(s1, {"S4", sec(40), ""});
  const NodeId s3 = t.add({"S3", sec(20), ""}, 1);
  std::printf("(a) original:\n%s\n", t.to_string().c_str());

  // (b) insert S5 at level 1, above S3.
  const NodeId s5 = t.insert_above(s3, {"S5", sec(20), ""});
  std::printf("(b) after inserting S5:\n%s\n", t.to_string().c_str());

  check("highestLevel", 2, t.highest_level());
  check("LevelNodes[0]->value", 20,
        static_cast<long long>(t.level_value(0).seconds()));
  check("LevelNodes[1]->value", 60,
        static_cast<long long>(t.level_value(1).seconds()));
  check("LevelNodes[2]->value", 120,
        static_cast<long long>(t.level_value(2).seconds()));
  check("S5 level", 1, t.level(s5));
  check("S3 level (pushed down)", 2, t.level(s3));

  std::printf("\n%d mismatches against the paper's reported values\n",
              failures);
    ::lod::bench::emit_json("bench_fig3_insert_node", "mismatches", failures);
  return failures == 0 ? 0 : 1;
}
