// Ablation A5 — adaptive multi-rate streaming vs a fixed profile.
//
// The same 2-minute lecture is published at three rates; the same set of
// access links plays it (a) pinned to the 250 kb/s rendition and (b) through
// the adaptive player that downshifts on rebuffering. The shape: on links
// that cannot carry the fixed rendition, the fixed player rebuffers its way
// to the end (or never finishes), while the adaptive player converges to the
// rendition the link can carry and plays on.

#include <cstdio>

#include "lod/lod/adaptive.hpp"
#include "lod/net/network.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

struct Row {
  bool finished;
  std::size_t stalls;
  std::string final_profile;
  std::size_t switches;
  double watch_time_s;  ///< wall time to play the 120 s lecture
};

static Row run(std::int64_t link_bps, bool adaptive, std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, seed);
  const net::HostId server = network.add_host("server");
  const net::HostId pc = network.add_host("pc");
  net::LinkConfig link;
  link.bandwidth_bps = link_bps;
  link.latency = net::msec(20);
  network.add_link(server, pc, link);

  app::WmpsNode node(network, server);
  app::VideoAsset video;
  video.duration = net::sec(120);
  node.register_video("lec.mp4", video);
  node.register_slides("slides", app::SlideAsset{2, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.publish_name = "lec";
  const auto ladder = app::publish_multirate(
      node, form,
      {"Video 250k DSL/cable", "Video 100k dual-ISDN", "Video 28.8k"});

  app::AdaptivePlayer::Options opts;
  opts.player.web_server = server;
  app::AdaptivePlayer ap(network, pc, opts);
  std::vector<app::Rendition> use =
      adaptive ? ladder.ladder
               : std::vector<app::Rendition>{ladder.ladder.front()};
  ap.play(server, use);
  sim.run_until(net::SimTime{net::sec(3600).us});

  Row r;
  r.finished = ap.finished();
  r.stalls = ap.player().stalls().size();
  r.final_profile = ap.current_profile();
  r.switches = ap.switches().size();
  r.watch_time_s = r.finished ? sim.now().seconds() : -1;
  // watch time: when the last unit rendered, not the 3600 s horizon.
  if (r.finished && !ap.player().rendered().empty()) {
    r.watch_time_s = ap.player().rendered().back().true_time.seconds();
  }
  return r;
}

int main() {
  std::printf("=== A5: fixed 250k rendition vs adaptive ladder ===\n\n");
  std::printf("%-12s | %-30s | %-36s\n", "", "fixed 250k", "adaptive");
  std::printf("%-12s | %8s %7s %11s | %8s %7s %4s  %-18s\n", "link", "done",
              "stalls", "watch", "done", "stalls", "sw", "final profile");

  struct Link {
    const char* name;
    std::int64_t bps;
  };
  bool shape_ok = true;
  for (const Link l : {Link{"LAN 10M", 10'000'000}, Link{"DSL 384k", 384'000},
                       Link{"ISDN 160k", 160'000}, Link{"modem 50k", 50'000}}) {
    const Row fixed = run(l.bps, false, 7);
    const Row ad = run(l.bps, true, 7);
    auto w = [](const Row& r) {
      static char buf[2][24];
      static int i = 0;
      i ^= 1;
      if (r.watch_time_s < 0) std::snprintf(buf[i], 24, "dnf");
      else std::snprintf(buf[i], 24, "%.0fs", r.watch_time_s);
      return buf[i];
    };
    std::printf("%-12s | %8s %7zu %11s | %8s %7zu %4zu  %-18s\n", l.name,
                fixed.finished ? "yes" : "no", fixed.stalls, w(fixed),
                ad.finished ? "yes" : "no", ad.stalls, ad.switches,
                ad.final_profile.c_str());
    // Shape: adaptive always finishes; on links below 250k+overhead it
    // must have downshifted; where both finish, adaptive stalls no more.
    shape_ok = shape_ok && ad.finished;
    if (l.bps < 300'000) shape_ok = shape_ok && ad.switches >= 1;
  }
  std::printf(
      "\nshape check (adaptive finishes everywhere, downshifting when the\n"
      "link cannot carry the top rendition): %s\n",
      shape_ok ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_a5_adaptive", "shape_holds",
                        shape_ok ? 1.0 : 0.0);
  return shape_ok ? 0 : 1;
}
