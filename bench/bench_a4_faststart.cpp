// Ablation A4 — the server's fast-start burst rate.
//
// The server sends the first preroll's worth of packets ahead of schedule so
// the client's buffer fills quickly. Bursting at line rate overflows
// drop-tail queues; bursting at 1x gains nothing. This bench sweeps the
// burst multiplier for a 750 kb/s stream on a 1 Mb/s access link and shows
// the startup-delay / loss trade-off behind the 4x default.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/streaming/player.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

struct Row {
  double startup_s;
  std::uint64_t lost;
  std::size_t stalls;
};

static Row run(double mult, std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, seed);
  const net::HostId server = network.add_host("server");
  const net::HostId pc = network.add_host("pc");
  net::LinkConfig link;
  link.bandwidth_bps = 1'000'000;
  link.latency = net::msec(15);
  link.queue_bytes = 64 * 1024;  // a small access-router buffer
  network.add_link(server, pc, link);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(60);
  wmps.register_video("lec.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{2, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 750k broadband";
  form.publish_name = "lec";
  wmps.publish(form);
  streaming::ServerConfig scfg = wmps.media_services().config();
  scfg.fast_start_multiplier = mult;
  wmps.media_services().configure(scfg);

  streaming::PlayerConfig cfg;
  cfg.model = streaming::SyncModel::kOcpn;
  cfg.web_server = server;
  streaming::Player player(network, pc, cfg);
  player.open_and_play(server, "lec");
  sim.run_until(net::SimTime{net::sec(300).us});

  const obs::Snapshot snap = sim.obs().metrics().snapshot();
  const obs::Labels at_pc{{"host", std::to_string(pc)}};
  const auto* startup = snap.histogram("lod.player.startup_us", at_pc);
  return Row{
      startup && startup->count ? static_cast<double>(startup->sum) / 1e6 : 0.0,
      snap.counter("lod.player.units_lost", at_pc),
      static_cast<std::size_t>(snap.counter("lod.player.stalls", at_pc))};
}

int main() {
  std::printf(
      "=== A4: fast-start burst rate (750 kb/s stream, 1 Mb/s link, 64 KB "
      "queue) ===\n\n");
  std::printf("%12s %10s %8s %8s\n", "burst rate", "startup", "lost",
              "stalls");
  double startup_1x = 0, startup_4x = 0;
  std::uint64_t lost_line_rate = 0;
  for (const double mult : {1.0, 1.5, 2.0, 4.0, 8.0, 1000.0}) {
    const Row r = run(mult, 9);
    if (mult == 1.0) startup_1x = r.startup_s;
    if (mult == 4.0) startup_4x = r.startup_s;
    if (mult == 1000.0) lost_line_rate = r.lost;
    if (mult >= 1000.0) {
      std::printf("%12s %8.2fs %8llu %8zu\n", "line rate", r.startup_s,
                  static_cast<unsigned long long>(r.lost), r.stalls);
    } else {
      std::printf("%10.1fx %8.2fs %8llu %8zu\n", mult, r.startup_s,
                  static_cast<unsigned long long>(r.lost), r.stalls);
    }
  }
  // Shape: moderate bursting buys startup latency; unbounded bursting pays
  // in queue drops on the small buffer.
  const bool shape_ok = startup_4x < startup_1x && lost_line_rate > 0;
  std::printf(
      "\nshape check (4x starts faster than 1x; line-rate bursts drop): %s\n",
      shape_ok ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_a4_faststart", "startup_s_at_4x", startup_4x);
  return shape_ok ? 0 : 1;
}
