// Claim C2 (§1) — OCPN/XOCPN "do not deal with the schedule change caused by
// user interactions in interactive multimedia systems"; the extended model
// does.
//
// Scenario: one student watches a 5-minute lecture and performs a seek to a
// sweep of targets, plus one pause/resume. Reported per model: the resync
// latency (user action -> media on screen again). The shape: the
// pre-orchestrated models' latency grows linearly with the seek target
// (they must replay the schedule from the top); the extended model's stays
// flat at ~preroll.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

static double seek_latency(streaming::SyncModel model, net::SimDuration to) {
  net::Simulator sim;
  net::Network network(sim, 21);
  const net::HostId server = network.add_host("server");
  const net::HostId pc = network.add_host("pc");
  net::LinkConfig lan;
  network.add_link(server, pc, lan);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(300);
  wmps.register_video("lec.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{4, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  wmps.publish(form);

  streaming::PlayerConfig cfg;
  cfg.model = model;
  cfg.web_server = server;
  streaming::Player player(network, pc, cfg);
  player.open_and_play(server, "lec");
  sim.run_until(net::SimTime{net::sec(10).us});
  player.seek(to);
  sim.run_until(net::SimTime{net::sec(800).us});
  for (const auto& ir : player.interactions()) {
    if (ir.kind == streaming::InteractionRecord::Kind::kSeek && ir.satisfied) {
      return ir.resync_latency().seconds();
    }
  }
  return -1.0;
}

static double resume_latency(streaming::SyncModel model) {
  net::Simulator sim;
  net::Network network(sim, 22);
  const net::HostId server = network.add_host("server");
  const net::HostId pc = network.add_host("pc");
  net::LinkConfig lan;
  network.add_link(server, pc, lan);
  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(300);
  wmps.register_video("lec.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{4, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  wmps.publish(form);

  streaming::PlayerConfig cfg;
  cfg.model = model;
  cfg.web_server = server;
  streaming::Player player(network, pc, cfg);
  player.open_and_play(server, "lec");
  sim.run_until(net::SimTime{net::sec(60).us});
  player.pause();
  sim.run_until(net::SimTime{net::sec(90).us});
  player.resume();
  const net::SimTime resumed = sim.now();
  sim.run_until(net::SimTime{net::sec(900).us});
  for (const auto& ir : player.interactions()) {
    if (ir.kind == streaming::InteractionRecord::Kind::kResume &&
        ir.satisfied) {
      return (ir.first_render_after - resumed).seconds();
    }
  }
  return -1.0;
}

int main() {
  std::printf("=== C2: schedule changes from user interactions ===\n\n");
  std::printf("seek from t=10s to T, resync latency (s):\n");
  std::printf("%-10s %10s %10s %10s\n", "target T", "OCPN", "XOCPN", "ETPN");
  bool shape_ok = true;
  double prev_ocpn = 0;
  for (const int target : {30, 60, 120, 240}) {
    const double o = seek_latency(streaming::SyncModel::kOcpn, net::sec(target));
    const double x = seek_latency(streaming::SyncModel::kXocpn, net::sec(target));
    const double e = seek_latency(streaming::SyncModel::kEtpn, net::sec(target));
    std::printf("%9ds %9.2fs %9.2fs %9.2fs\n", target, o, x, e);
    // Shape: OCPN grows with the target, ETPN flat and small.
    shape_ok = shape_ok && o > prev_ocpn && e < 6.0 && o > e;
    prev_ocpn = o;
  }

  std::printf("\npause at 60s, resume 30s later, resync latency:\n");
  std::printf("%-10s %10s %10s %10s\n", "", "OCPN", "XOCPN", "ETPN");
  const double ro = resume_latency(streaming::SyncModel::kOcpn);
  const double rx = resume_latency(streaming::SyncModel::kXocpn);
  const double re = resume_latency(streaming::SyncModel::kEtpn);
  std::printf("%-10s %9.2fs %9.2fs %9.2fs\n", "resume", ro, rx, re);
  shape_ok = shape_ok && re < 1.0 && ro > 10 * re;

  std::printf(
      "\nshape check (pre-orchestrated models replay the schedule, the\n"
      "extended model resumes in ~preroll): %s\n",
      shape_ok ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_c2_user_interaction", "shape_holds",
                        shape_ok ? 1.0 : 0.0);
  return shape_ok ? 0 : 1;
}
