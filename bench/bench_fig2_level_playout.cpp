// Fig. 2 — "A well-defined multiple level content tree."
//
// §2.2: "the siblings with the order from left to right represent a
// presentation with some sequence fashion. The higher level gives the longer
// presentation." We build a well-defined tree, extract the presentation
// sequence per level, compile each to an OCPN, and verify that the playout
// makespan equals the tree's presentation_time at that level.

#include <cstdio>

#include "lod/lod/abstraction.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

int main() {
  std::printf("=== Fig. 2: level playouts of a well-defined content tree ===\n\n");

  const std::vector<app::LectureSegment> segments = {
      {"root-summary", 0, net::sec(0), net::sec(45), 0},
      {"part-a", 1, net::sec(45), net::sec(165), 1},
      {"a-detail-1", 2, net::sec(165), net::sec(225), 2},
      {"a-detail-2", 2, net::sec(225), net::sec(285), 3},
      {"part-b", 1, net::sec(285), net::sec(405), 4},
      {"b-detail", 2, net::sec(405), net::sec(525), 5},
      {"part-c", 1, net::sec(525), net::sec(585), 6},
  };
  const auto tree = app::build_lecture_tree(segments);
  std::printf("%s\n", tree.to_string().c_str());

  std::printf("%-6s %-14s %-12s  sequence (left to right)\n", "level",
              "presentation", "makespan");
  bool ok = true;
  for (int q = 0; q <= tree.highest_level(); ++q) {
    const auto spec = app::level_spec(tree, q);
    const auto compiled = core::build_ocpn(spec);
    const auto trace = core::play(compiled.net, compiled.initial_marking());
    const bool match = trace.makespan == tree.presentation_time(q);
    ok = ok && match && !trace.truncated;
    std::printf("%-6d %12.0fs %10.0fs  ", q,
                tree.presentation_time(q).seconds(),
                trace.makespan.seconds());
    for (const auto& e : app::level_playlist(tree, q)) {
      std::printf("%s ", e.name.c_str());
    }
    std::printf("%s\n", match ? "" : "  << MISMATCH");
  }

  std::printf("\nplayout makespan == presentation_time at every level: %s\n",
              ok ? "yes" : "NO");
    ::lod::bench::emit_json("bench_fig2_level_playout", "shape_holds",
                        ok ? 1.0 : 0.0);
  return ok ? 0 : 1;
}
