// Fig. 6 — "A Multi-level content tree of the web-based multimedia
// presentation."
//
// The real-lecture version of the content tree: a 30-minute published
// presentation segmented into 3 levels. For each level we print the playlist
// (what a viewer with that much time watches), the per-level accounting, the
// slide commands the abstraction emits, and we validate the level playout
// through the OCPN engine.

#include <cstdio>

#include "lod/core/etpn.hpp"
#include "lod/lod/abstraction.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

int main() {
  std::printf("=== Fig. 6: content tree of a web-based presentation ===\n\n");

  // A 30-minute lecture, segmented by the Abstractor.
  using net::sec;
  const std::vector<app::LectureSegment> segs = {
      {"abstract", 0, sec(0), sec(120), 0},
      {"motivation", 1, sec(120), sec(300), 1},
      {"petri-net-model", 1, sec(300), sec(600), 3},
      {"ocpn-background", 2, sec(600), sec(780), 4},
      {"xocpn-channels", 2, sec(780), sec(960), 5},
      {"extended-net", 2, sec(960), sec(1200), 6},
      {"implementation", 1, sec(1200), sec(1500), 8},
      {"asf-pipeline", 2, sec(1500), sec(1620), 9},
      {"publishing-demo", 2, sec(1620), sec(1740), 10},
      {"conclusion", 1, sec(1740), sec(1800), 11},
  };
  const auto tree = app::build_lecture_tree(segs);
  std::printf("%s\n", tree.to_string().c_str());

  std::printf("%-6s %-13s %-13s %-7s playlist\n", "level", "LevelNodes",
              "presentation", "slides");
  bool ok = tree.check_invariants();
  for (int q = 0; q <= tree.highest_level(); ++q) {
    const auto cmds = app::level_slide_commands(tree, q, "slides/");
    std::printf("%-6d %11.0fs %11.0fs %7zu ", q,
                tree.level_value(q).seconds(),
                tree.presentation_time(q).seconds(), cmds.size());
    for (const auto& e : app::level_playlist(tree, q)) {
      std::printf("%s ", e.name.c_str());
    }
    std::printf("\n");

    // Validate via the Petri net engine: the abstraction plays exactly
    // presentation_time(q) seconds.
    const auto compiled = core::build_ocpn(app::level_spec(tree, q));
    const auto trace = core::play(compiled.net, compiled.initial_marking());
    ok = ok && trace.makespan == tree.presentation_time(q);
  }

  std::printf(
      "\nviewer time budgets served by one recording: %0.0fs / %0.0fs / "
      "%0.0fs\n",
      tree.presentation_time(0).seconds(),
      tree.presentation_time(1).seconds(),
      tree.presentation_time(2).seconds());
  std::printf("all levels validated through the OCPN engine: %s\n",
              ok ? "yes" : "NO");
    ::lod::bench::emit_json("bench_fig6_lecture_tree", "shape_holds", ok ? 1.0 : 0.0);
  return ok ? 0 : 1;
}
