// M1 — session live-migration vs re-describe failover, and record-replay
// determinism (ROADMAP item 4).
//
// Part 1: one mid-playout session loses its serving edge. The legacy
// recovery re-describes from scratch at the next replica — which drops the
// jitter buffer and stalls rendering for a preroll refill. The migration
// handshake (freeze -> ship image -> resume over /edge/migrate) keeps the
// buffer and resumes the packet feed where it left off, so the acceptance
// shape is: migration stall <= one jitter-buffer depth (the 2 s preroll),
// and at most the re-describe stall.
//
// Part 2: a 1000-session LoadGen run is recorded (every scripted input
// journaled through lod::sync::SessionRecorder) and replayed from the
// journal; the replayed run's merged snapshot must be byte-identical to the
// recorded one.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "lod/edge/edge_node.hpp"
#include "lod/edge/replica_selector.hpp"
#include "lod/lod/loadgen.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/export.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"
#include "lod/sync/replay.hpp"

#include "bench_json.hpp"

using namespace lod;

namespace {

constexpr net::SimDuration kPreroll = net::msec(2000);  // jitter-buffer depth

struct FailoverRun {
  bool finished{false};
  std::uint64_t failovers{0};
  std::uint64_t migrations{0};
  double max_stall_ms{0};
  double resume_gap_ms{0};  ///< longest render gap after the kill
};

/// One session: client --LAN-- edge A (dies at t=5s) / edge B (warm, the
/// failover floor) --WAN-- origin. Returns how rendering weathered the loss.
FailoverRun run_failover(bool migrate) {
  net::Simulator sim;
  net::Network network(sim, 77);
  const auto origin = network.add_host("origin");
  const auto edge_a = network.add_host("edge_a");
  const auto edge_b = network.add_host("edge_b");
  const auto client = network.add_host("client");
  net::LinkConfig wan;
  wan.bandwidth_bps = 20'000'000;
  wan.latency = net::msec(60);
  network.add_link(origin, edge_a, wan);
  network.add_link(origin, edge_b, wan);
  net::LinkConfig lan;
  lan.bandwidth_bps = 10'000'000;
  lan.latency = net::msec(2);
  network.add_link(edge_a, client, lan);
  net::LinkConfig lan_b = lan;
  lan_b.latency = net::msec(3);
  network.add_link(edge_b, client, lan_b);

  streaming::StreamingServer server(network, origin);
  edge::OriginGateway gateway(network, server);
  edge::EdgeConfig ec;
  ec.origin = origin;
  auto node_a = std::make_unique<edge::EdgeNode>(network, edge_a, ec);
  edge::EdgeNode node_b(network, edge_b, ec);

  streaming::EncodeJob job;
  job.profile = *media::find_profile("Video 250k DSL/cable");
  job.preroll = kPreroll;
  media::LectureVideoSource v(net::sec(30), job.profile.fps,
                              job.profile.width, job.profile.height, 7);
  media::LectureAudioSource a(net::sec(30), job.profile.audio_sample_rate());
  server.publish("lec", streaming::encode_lecture(job, v, a, {}).file);

  // Warm B so /edge/migrate can adopt (and the re-describe arm gets the
  // same warm target — the comparison varies only the recovery path).
  {
    streaming::PlayerConfig wc;
    wc.ctl_port = 6900;
    wc.data_port = 6901;
    wc.web_server = origin;
    streaming::Player warm(network, client, wc);
    warm.open_and_play(edge_b, "lec");
    sim.run_until(sim.now() + net::sec(3));
    warm.stop();
    sim.run_until(sim.now() + net::sec(1));
  }

  edge::ReplicaSelector sel(network, client, edge_b, {edge_a});
  streaming::PlayerConfig cfg;
  cfg.ctl_port = 5000;
  cfg.data_port = 5001;
  cfg.web_server = origin;
  cfg.failover_timeout = net::msec(1500);
  cfg.migrate_on_failover = migrate;
  streaming::Player p(network, client, cfg);
  p.open_and_play_via(sel, "lec");
  sim.run_until(sim.now() + net::sec(5));

  const net::SimTime kill_at = sim.now();
  node_a.reset();
  sim.run_until(sim.now() + net::sec(55));

  FailoverRun r;
  r.finished = p.finished();
  r.failovers = p.failovers();
  r.migrations = p.migrations();
  for (const auto& s : p.stalls()) {
    r.max_stall_ms = std::max(r.max_stall_ms, s.duration.us / 1000.0);
  }
  // The user-visible freeze: longest gap between consecutive rendered units
  // once the serving edge is gone.
  net::SimTime prev{};
  bool have_prev = false;
  for (const auto& ev : p.rendered()) {
    if (have_prev && ev.true_time > kill_at) {
      r.resume_gap_ms = std::max(
          r.resume_gap_ms, (ev.true_time - prev).us / 1000.0);
    }
    prev = ev.true_time;
    have_prev = true;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("=== M1: live migration vs re-describe failover ===\n\n");

  const FailoverRun redo = run_failover(/*migrate=*/false);
  const FailoverRun mig = run_failover(/*migrate=*/true);

  std::printf("%-14s %9s %9s %12s %12s %10s\n", "recovery", "failovers",
              "migrated", "max stall", "resume gap", "finished");
  std::printf("%-14s %9llu %9llu %10.0fms %10.0fms %10s\n", "re-describe",
              static_cast<unsigned long long>(redo.failovers),
              static_cast<unsigned long long>(redo.migrations),
              redo.max_stall_ms, redo.resume_gap_ms,
              redo.finished ? "yes" : "NO");
  std::printf("%-14s %9llu %9llu %10.0fms %10.0fms %10s\n", "migrate",
              static_cast<unsigned long long>(mig.failovers),
              static_cast<unsigned long long>(mig.migrations),
              mig.max_stall_ms, mig.resume_gap_ms,
              mig.finished ? "yes" : "NO");

  bool shape_ok = redo.finished && mig.finished && mig.migrations >= 1 &&
                  redo.migrations == 0;
  // Acceptance: a mid-playout migration freezes rendering for at most one
  // jitter-buffer depth, and strictly less than the re-describe recovery it
  // replaces. The resume GAP is the honest metric for both arms — the
  // re-describe path drops the session back to buffering, so its freeze is
  // a fresh preroll fill that never shows up as a StallEvent.
  const double depth_ms = kPreroll.us / 1000.0;
  shape_ok = shape_ok && mig.max_stall_ms <= depth_ms &&
             mig.resume_gap_ms <= depth_ms &&
             mig.resume_gap_ms < redo.resume_gap_ms;

  std::printf("\n=== record-replay determinism (1000 sessions, 4 shards) "
              "===\n\n");
  ::lod::lod::WorkloadSpec spec;
  spec.sessions = 1000;
  spec.client_hosts = 16;
  spec.lecture_len = net::sec(4);
  spec.arrival_window = net::sec(20);
  spec.flaky_edge_up_for = net::sec(12);
  spec.horizon = net::sec(180);
  const auto rec = sync::record_loadgen_run(spec, /*shards=*/4, 0x4D31);
  const auto wire = sync::serialize_input_log(rec.log);
  const auto replay =
      sync::replay_loadgen_run(spec, /*shards=*/4,
                               sync::parse_input_log(wire));
  const bool identical =
      obs::to_json(replay.merged) == obs::to_json(rec.result.merged);
  const auto finished = rec.result.merged.counter("lod.loadgen.finished");
  std::printf("sessions: %llu finished, %zu journaled inputs (%zu bytes "
              "on the wire)\n",
              static_cast<unsigned long long>(finished),
              rec.log.records.size(), wire.size());
  std::printf("replayed merged snapshot byte-identical: %s\n",
              identical ? "yes" : "NO");
  shape_ok = shape_ok && identical && finished == spec.sessions;

  std::printf("\nshape check (migration stall <= %.0fms jitter depth, <= "
              "re-describe;\n1000-session replay byte-identical): %s\n",
              depth_ms, shape_ok ? "holds" : "VIOLATED");
  ::lod::bench::emit_json(
      "bench_m1_migration", "migration_stall_ms", mig.max_stall_ms,
      {{"redescribe_stall_ms", redo.max_stall_ms},
       {"migration_resume_gap_ms", mig.resume_gap_ms},
       {"redescribe_resume_gap_ms", redo.resume_gap_ms},
       {"replay_identical", identical ? 1.0 : 0.0},
       {"journal_inputs", static_cast<double>(rec.log.records.size())}});
  return shape_ok ? 0 : 1;
}
