// Ablation A2 — slide prefetching (extension over the paper's browser).
//
// The paper-era browser fetched a slide when its SLIDE script command fired,
// so every flip paid RTT + transfer on the access link. The prefetching
// player fetches as soon as the command is demuxed (which, with the server's
// preroll-ahead pacing, is seconds early). This bench quantifies the win per
// link class.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

struct Row {
  double mean_ms;
  double worst_ms;
  std::size_t instant;  ///< slides shown with zero display latency
  std::size_t shown;
};

static Row run(bool prefetch, std::int64_t link_bps, std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, seed);
  const net::HostId server = network.add_host("server");
  const net::HostId pc = network.add_host("pc");
  net::LinkConfig link;
  link.bandwidth_bps = link_bps;
  link.latency = net::msec(20);
  network.add_link(server, pc, link);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(120);
  wmps.register_video("lec.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{10, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  // Keep the stream itself comfortably within every link tested.
  form.profile = "Video 100k dual-ISDN";
  form.publish_name = "lec";
  wmps.publish(form);

  streaming::PlayerConfig cfg;
  cfg.web_server = server;
  cfg.prefetch_slides = prefetch;
  streaming::Player player(network, pc, cfg);
  player.open_and_play(server, "lec");
  sim.run();

  Row r{0, 0, 0, player.slides().size()};
  for (const auto& s : player.slides()) {
    const double ms = s.fetch_latency.millis();
    r.mean_ms += ms;
    r.worst_ms = std::max(r.worst_ms, ms);
    if (s.fetch_latency.us == 0) ++r.instant;
  }
  if (!player.slides().empty()) {
    r.mean_ms /= static_cast<double>(player.slides().size());
  }
  return r;
}

int main() {
  std::printf("=== A2: slide display latency, fetch-at-flip vs prefetch ===\n\n");
  std::printf("%-12s | %-28s | %-28s\n", "", "fetch at flip (paper)",
              "prefetch (extension)");
  std::printf("%-12s | %9s %9s %7s | %9s %9s %7s\n", "link", "mean", "worst",
              "instant", "mean", "worst", "instant");

  struct Link {
    const char* name;
    std::int64_t bps;
  };
  bool shape_ok = true;
  for (const Link l : {Link{"ISDN 256k", 256'000}, Link{"DSL 1.5M", 1'500'000},
                       Link{"LAN 10M", 10'000'000}}) {
    const Row off = run(false, l.bps, 5);
    const Row on = run(true, l.bps, 5);
    std::printf("%-12s | %7.1fms %7.1fms %4zu/%-2zu | %7.1fms %7.1fms %4zu/%-2zu\n",
                l.name, off.mean_ms, off.worst_ms, off.instant, off.shown,
                on.mean_ms, on.worst_ms, on.instant, on.shown);
    shape_ok = shape_ok && on.shown == off.shown && on.mean_ms < off.mean_ms &&
               on.instant >= off.instant;
  }
  std::printf(
      "\nshape check (prefetch strictly reduces display latency): %s\n",
      shape_ok ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_a2_slide_prefetch", "shape_holds",
                        shape_ok ? 1.0 : 0.0);
  return shape_ok ? 0 : 1;
}
