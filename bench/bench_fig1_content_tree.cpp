// Fig. 1 — "An example of multiple level content tree."
//
// Reconstructs a 4-level content tree like the paper's drawing (levels 0-3)
// and prints its structure plus the per-level accounting the Abstractor
// maintains. The checkmarks assert the level law (children of level q sit at
// level q+1) and the monotone-presentation property of §2.2.

#include <cstdio>

#include "lod/contenttree/content_tree.hpp"

#include "bench_json.hpp"

using namespace lod::contenttree;
using lod::net::sec;

int main() {
  std::printf("=== Fig. 1: example multiple-level content tree ===\n\n");

  // Level 0: the lecture; level 1: chapters; level 2: sections; level 3:
  // detail clips — shaped like the paper's figure.
  ContentTree t;
  const NodeId root = t.add({"lecture", sec(30), ""}, 0);
  const NodeId ch1 = t.attach_child(root, {"ch1", sec(40), ""});
  const NodeId ch2 = t.attach_child(root, {"ch2", sec(50), ""});
  const NodeId s11 = t.attach_child(ch1, {"s1.1", sec(20), ""});
  t.attach_child(ch1, {"s1.2", sec(25), ""});
  t.attach_child(ch2, {"s2.1", sec(30), ""});
  const NodeId s22 = t.attach_child(ch2, {"s2.2", sec(35), ""});
  t.attach_child(s11, {"d1", sec(15), ""});
  t.attach_child(s22, {"d2", sec(15), ""});
  t.attach_child(s22, {"d3", sec(10), ""});

  std::printf("%s\n", t.to_string().c_str());

  std::printf("%-6s %-14s %-18s\n", "level", "LevelNodes[q]", "presentation(q)");
  bool monotone = true;
  lod::net::SimDuration prev{-1};
  for (int q = 0; q <= t.highest_level(); ++q) {
    const auto lv = t.level_value(q);
    const auto pt = t.presentation_time(q);
    std::printf("%-6d %12.0fs %16.0fs\n", q, lv.seconds(), pt.seconds());
    monotone = monotone && pt > prev;
    prev = pt;
  }

  // The level law: every node's children are exactly one level deeper.
  bool level_law = true;
  for (NodeId n : t.sequence(t.highest_level())) {
    for (NodeId c : t.children(n)) {
      level_law = level_law && (t.level(c) == t.level(n) + 1);
    }
  }

  std::printf("\nhighest level          : %d (paper draws levels 0..3)\n",
              t.highest_level());
  std::printf("level law (q -> q+1)   : %s\n", level_law ? "holds" : "VIOLATED");
  std::printf("longer at deeper level : %s\n",
              monotone ? "holds" : "VIOLATED");
  std::printf("invariants             : %s\n",
              t.check_invariants() ? "ok" : "BROKEN");
    ::lod::bench::emit_json("bench_fig1_content_tree", "shape_holds",
                        (level_law && monotone && t.check_invariants()) ? 1.0 : 0.0);
  return (level_law && monotone && t.check_invariants()) ? 0 : 1;
}
