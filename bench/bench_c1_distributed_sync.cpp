// Claim C1 (§1) — OCPN/XOCPN "lack methods to describe the details of
// synchronization across distributed platforms"; the extended timed Petri
// net handles it.
//
// Scenario: an absolutely scheduled classroom presentation (pts p renders at
// master time T0 + p on every screen). Students' PC clocks are offset and
// drifting. We sweep the clock-offset range and report, per sync model, the
// cross-student render skew. The shape to observe: OCPN/XOCPN skew grows
// linearly with the clock error (they trust the local clock), ETPN stays
// flat at network-asymmetry level (it synchronizes clocks over the net).

#include <cstdio>

#include "lod/lod/classroom.hpp"

using namespace lod;
namespace app = ::lod::lod;

static app::Classroom::SkewReport run(streaming::SyncModel model,
                                      net::SimDuration offset_range,
                                      std::uint64_t seed) {
  net::Simulator sim;
  app::ClassroomConfig cfg;
  cfg.students = 4;
  cfg.model = model;
  cfg.clock_offset_range = offset_range;
  cfg.drift_ppm_range = 50.0;
  cfg.seed = seed;
  cfg.clock_sync_interval = net::sec(10);
  app::Classroom room(sim, cfg);

  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  app::VideoAsset video;
  video.duration = net::sec(60);
  if (!room.publish(form, video, app::SlideAsset{4, 13}).ok) return {};
  room.start_watching("lec", {}, net::sec(5));
  sim.run();
  return room.skew_report();
}

int main() {
  std::printf(
      "=== C1: cross-platform synchronization, scheduled presentation ===\n\n");
  std::printf("4 students, 60 s lecture, drift +-50 ppm, sync every 10 s\n\n");
  std::printf("%-18s %14s %14s %14s\n", "clock offset +-", "OCPN max skew",
              "XOCPN max skew", "ETPN max skew");

  bool shape_ok = true;
  for (const std::int64_t ms : {0LL, 50LL, 150LL, 300LL, 600LL}) {
    const auto range = net::msec(ms);
    const auto ocpn = run(streaming::SyncModel::kOcpn, range, 1000 + ms);
    const auto xocpn = run(streaming::SyncModel::kXocpn, range, 1000 + ms);
    const auto etpn = run(streaming::SyncModel::kEtpn, range, 1000 + ms);
    std::printf("%15lldms %13.1fms %13.1fms %13.1fms\n",
                static_cast<long long>(ms), ocpn.max_skew.millis(),
                xocpn.max_skew.millis(), etpn.max_skew.millis());
    // The paper's shape: the unsynchronized models track the clock error;
    // the extended model stays bounded regardless.
    if (ms >= 150) {
      shape_ok = shape_ok && ocpn.max_skew.us > etpn.max_skew.us * 3 &&
                 xocpn.max_skew.us > etpn.max_skew.us * 3;
    }
  }

  std::printf(
      "\nshape check (OCPN/XOCPN skew >> ETPN skew once clocks err): %s\n",
      shape_ok ? "holds" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
