// Claim C1 (§1) — OCPN/XOCPN "lack methods to describe the details of
// synchronization across distributed platforms"; the extended timed Petri
// net handles it.
//
// Scenario: an absolutely scheduled classroom presentation (pts p renders at
// master time T0 + p on every screen). Students' PC clocks are offset and
// drifting. We sweep the clock-offset range and report, per sync model, the
// cross-student render skew. The shape to observe: OCPN/XOCPN skew grows
// linearly with the clock error (they trust the local clock), ETPN stays
// flat at network-asymmetry level (it synchronizes clocks over the net).

// A second scenario measures the sync subsystem's DESYNC RECOVERY (ISSUE 7):
// a lossy 4-student classroom replicates the teacher's floor state through
// sync epochs; after an interaction burst we report how many epochs the
// slowest replica needed to reconverge and how many bytes the delta
// resynchronization moved compared to a full state re-describe.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "lod/lod/classroom.hpp"
#include "lod/lod/floor.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/sync/agent.hpp"
#include "lod/sync/blocks.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

/// Cross-student skew, derived from the per-player
/// `lod.player.render_offset_us{host}` histograms (render instant minus pts;
/// for an absolutely scheduled presentation the spread of that offset across
/// students bounds the on-screen skew).
struct Skew {
  std::int64_t max_skew_us{0};
  double millis() const { return static_cast<double>(max_skew_us) / 1000.0; }
};

static Skew run(streaming::SyncModel model, net::SimDuration offset_range,
                std::uint64_t seed) {
  net::Simulator sim;
  app::ClassroomConfig cfg;
  cfg.students = 4;
  cfg.model = model;
  cfg.clock_offset_range = offset_range;
  cfg.drift_ppm_range = 50.0;
  cfg.seed = seed;
  cfg.clock_sync_interval = net::sec(10);
  app::Classroom room(sim, cfg);

  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  app::VideoAsset video;
  video.duration = net::sec(60);
  if (!room.publish(form, video, app::SlideAsset{4, 13}).ok) return {};
  room.start_watching("lec", {}, net::sec(5));
  sim.run();

  const obs::Snapshot snap = sim.obs().metrics().snapshot();
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  for (const auto& s : room.students()) {
    const auto* h = snap.histogram("lod.player.render_offset_us",
                                   {{"host", std::to_string(s.host)}});
    if (!h || h->count == 0) return {};
    lo = std::min(lo, h->min);
    hi = std::max(hi, h->max);
  }
  return Skew{hi - lo};
}

/// Desync-recovery numbers from one lossy replicated-floor session.
struct Recovery {
  bool converged{false};
  std::uint64_t epochs_to_converge{0};  ///< slowest replica, epochs
  double avg_delta_bytes{0};            ///< per resync image received
  double full_bytes{0};                 ///< a full state re-describe
};

static Recovery run_recovery(std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, seed);
  const std::vector<std::string> users{"teacher", "s0", "s1", "s2", "s3"};
  constexpr std::size_t kStudents = 4;

  struct Site {
    app::FloorControl floor;
    sync::SessionState state;
    std::unique_ptr<sync::SyncAgent> agent;
    std::uint64_t resync_epoch{0};
    explicit Site(const std::vector<std::string>& u) : floor(u) {}
  };

  const net::HostId teacher = network.add_host("teacher");
  net::LinkConfig lossy;
  lossy.latency = net::msec(8);
  lossy.jitter = net::msec(4);
  lossy.loss_rate = 0.10;

  Site authority(users);
  std::vector<std::unique_ptr<Site>> replicas;

  // A chunky static block stands in for the session's described state (the
  // slide deck): the cost a full re-describe would pay and a delta must not.
  const auto deck_block = [](sync::SessionState& s) {
    s.register_block(
        1, "deck",
        [](sync::StateWriter& w) {
          std::vector<std::byte> deck(8192);
          for (std::size_t i = 0; i < deck.size(); ++i) {
            deck[i] = static_cast<std::byte>(i * 131 + 17);
          }
          w.blob(deck);
        },
        [](sync::StateReader& r) { (void)r.blob(); });
  };

  sync::SyncConfig base;
  base.epoch_interval = net::msec(200);
  base.persistent_after = 2;
  base.structure = authority.floor.net().structure_hash();

  const auto wire = [&](Site& site, net::HostId host, bool authoritative) {
    deck_block(site.state);
    sync::register_floor_block(site.state, 2, "floor", &site.floor);
    sync::SyncConfig cfg = base;
    cfg.authoritative = authoritative;
    site.agent =
        std::make_unique<sync::SyncAgent>(network, host, site.state, cfg);
  };
  wire(authority, teacher, true);
  for (std::size_t i = 0; i < kStudents; ++i) {
    const auto h = network.add_host("student" + std::to_string(i));
    network.add_link(teacher, h, lossy);
    replicas.push_back(std::make_unique<Site>(users));
    wire(*replicas.back(), h, false);
    authority.agent->add_peer(h);
    replicas.back()->agent->on_resync(
        [r = replicas.back().get()](std::uint64_t epoch, std::size_t) {
          r->resync_epoch = epoch;
        });
  }
  authority.agent->start();
  for (auto& r : replicas) r->agent->start();

  // The interaction burst the replicas must catch up with.
  network.schedule_after(net::sec(2), [&] {
    authority.floor.request("teacher");
    authority.floor.request("s1");
    authority.floor.request("s2");
  });
  const std::uint64_t burst_epoch =
      static_cast<std::uint64_t>(net::sec(2).us / base.epoch_interval.us);
  sim.run_until(net::SimTime{net::sec(12).us});

  Recovery rec;
  authority.state.refresh();
  rec.full_bytes = static_cast<double>(authority.state.full_size_bytes());
  rec.converged = true;
  double delta_sum = 0;
  std::uint64_t replies = 0;
  for (auto& r : replicas) {
    r->state.refresh();
    const sync::SyncStats& st = r->agent->stats();
    rec.converged = rec.converged && !r->agent->detector().desynced() &&
                    r->state.checksum() == authority.state.checksum() &&
                    st.resync_ok >= 1 && r->resync_epoch > burst_epoch;
    if (r->resync_epoch > burst_epoch) {
      rec.epochs_to_converge =
          std::max(rec.epochs_to_converge, r->resync_epoch - burst_epoch);
    }
    delta_sum += static_cast<double>(st.delta_bytes);
    replies += st.resync_ok + st.resync_fail;
  }
  if (replies > 0) rec.avg_delta_bytes = delta_sum / static_cast<double>(replies);
  return rec;
}

int main() {
  std::printf(
      "=== C1: cross-platform synchronization, scheduled presentation ===\n\n");
  std::printf("4 students, 60 s lecture, drift +-50 ppm, sync every 10 s\n\n");
  std::printf("%-18s %14s %14s %14s\n", "clock offset +-", "OCPN max skew",
              "XOCPN max skew", "ETPN max skew");

  bool shape_ok = true;
  for (const std::int64_t ms : {0LL, 50LL, 150LL, 300LL, 600LL}) {
    const auto range = net::msec(ms);
    const auto ocpn = run(streaming::SyncModel::kOcpn, range, 1000 + ms);
    const auto xocpn = run(streaming::SyncModel::kXocpn, range, 1000 + ms);
    const auto etpn = run(streaming::SyncModel::kEtpn, range, 1000 + ms);
    std::printf("%15lldms %13.1fms %13.1fms %13.1fms\n",
                static_cast<long long>(ms), ocpn.millis(), xocpn.millis(),
                etpn.millis());
    // The paper's shape: the unsynchronized models track the clock error;
    // the extended model stays bounded regardless.
    if (ms >= 150) {
      shape_ok = shape_ok && ocpn.max_skew_us > etpn.max_skew_us * 3 &&
                 xocpn.max_skew_us > etpn.max_skew_us * 3;
    }
  }

  std::printf(
      "\nshape check (OCPN/XOCPN skew >> ETPN skew once clocks err): %s\n",
      shape_ok ? "holds" : "VIOLATED");

  const Recovery rec = run_recovery(4242);
  std::printf(
      "\n=== desync recovery: replicated floor state, 10%% loss ===\n\n");
  std::printf("converged after interaction burst:   %s\n",
              rec.converged ? "yes (all 4 replicas)" : "NO");
  std::printf("epochs to converge (slowest):        %llu\n",
              static_cast<unsigned long long>(rec.epochs_to_converge));
  std::printf("avg resync delta:                    %.0f bytes\n",
              rec.avg_delta_bytes);
  std::printf("full state re-describe:              %.0f bytes (%.1fx)\n",
              rec.full_bytes,
              rec.avg_delta_bytes > 0 ? rec.full_bytes / rec.avg_delta_bytes
                                      : 0.0);

  const bool ok = shape_ok && rec.converged;
  ::lod::bench::emit_json(
      "bench_c1_distributed_sync", "shape_holds", ok ? 1.0 : 0.0,
      {{"recovery_epochs", static_cast<double>(rec.epochs_to_converge)},
       {"resync_delta_bytes", rec.avg_delta_bytes},
       {"full_state_bytes", rec.full_bytes}});
  return ok ? 0 : 1;
}
