// Claim C1 (§1) — OCPN/XOCPN "lack methods to describe the details of
// synchronization across distributed platforms"; the extended timed Petri
// net handles it.
//
// Scenario: an absolutely scheduled classroom presentation (pts p renders at
// master time T0 + p on every screen). Students' PC clocks are offset and
// drifting. We sweep the clock-offset range and report, per sync model, the
// cross-student render skew. The shape to observe: OCPN/XOCPN skew grows
// linearly with the clock error (they trust the local clock), ETPN stays
// flat at network-asymmetry level (it synchronizes clocks over the net).

#include <algorithm>
#include <cstdio>
#include <limits>

#include "lod/lod/classroom.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/metrics.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

/// Cross-student skew, derived from the per-player
/// `lod.player.render_offset_us{host}` histograms (render instant minus pts;
/// for an absolutely scheduled presentation the spread of that offset across
/// students bounds the on-screen skew).
struct Skew {
  std::int64_t max_skew_us{0};
  double millis() const { return static_cast<double>(max_skew_us) / 1000.0; }
};

static Skew run(streaming::SyncModel model, net::SimDuration offset_range,
                std::uint64_t seed) {
  net::Simulator sim;
  app::ClassroomConfig cfg;
  cfg.students = 4;
  cfg.model = model;
  cfg.clock_offset_range = offset_range;
  cfg.drift_ppm_range = 50.0;
  cfg.seed = seed;
  cfg.clock_sync_interval = net::sec(10);
  app::Classroom room(sim, cfg);

  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  app::VideoAsset video;
  video.duration = net::sec(60);
  if (!room.publish(form, video, app::SlideAsset{4, 13}).ok) return {};
  room.start_watching("lec", {}, net::sec(5));
  sim.run();

  const obs::Snapshot snap = sim.obs().metrics().snapshot();
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  for (const auto& s : room.students()) {
    const auto* h = snap.histogram("lod.player.render_offset_us",
                                   {{"host", std::to_string(s.host)}});
    if (!h || h->count == 0) return {};
    lo = std::min(lo, h->min);
    hi = std::max(hi, h->max);
  }
  return Skew{hi - lo};
}

int main() {
  std::printf(
      "=== C1: cross-platform synchronization, scheduled presentation ===\n\n");
  std::printf("4 students, 60 s lecture, drift +-50 ppm, sync every 10 s\n\n");
  std::printf("%-18s %14s %14s %14s\n", "clock offset +-", "OCPN max skew",
              "XOCPN max skew", "ETPN max skew");

  bool shape_ok = true;
  for (const std::int64_t ms : {0LL, 50LL, 150LL, 300LL, 600LL}) {
    const auto range = net::msec(ms);
    const auto ocpn = run(streaming::SyncModel::kOcpn, range, 1000 + ms);
    const auto xocpn = run(streaming::SyncModel::kXocpn, range, 1000 + ms);
    const auto etpn = run(streaming::SyncModel::kEtpn, range, 1000 + ms);
    std::printf("%15lldms %13.1fms %13.1fms %13.1fms\n",
                static_cast<long long>(ms), ocpn.millis(), xocpn.millis(),
                etpn.millis());
    // The paper's shape: the unsynchronized models track the clock error;
    // the extended model stays bounded regardless.
    if (ms >= 150) {
      shape_ok = shape_ok && ocpn.max_skew_us > etpn.max_skew_us * 3 &&
                 xocpn.max_skew_us > etpn.max_skew_us * 3;
    }
  }

  std::printf(
      "\nshape check (OCPN/XOCPN skew >> ETPN skew once clocks err): %s\n",
      shape_ok ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_c1_distributed_sync", "shape_holds",
                        shape_ok ? 1.0 : 0.0);
  return shape_ok ? 0 : 1;
}
