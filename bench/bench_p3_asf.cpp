// P3 — ASF container throughput: mux, demux, serialize, index, DRM.

#include <benchmark/benchmark.h>

#include "lod/media/asf.hpp"
#include "lod/media/codec.hpp"
#include "lod/media/profile.hpp"
#include "lod/media/sources.hpp"

#include "bench_json.hpp"

using namespace lod::media;
using lod::net::msec;
using lod::net::sec;
using lod::net::secf;

namespace {

asf::Header header_for(std::int64_t seconds) {
  asf::Header h;
  h.props.title = "bench";
  h.props.play_duration = sec(seconds);
  h.props.packet_bytes = 1400;
  h.streams = {{1, MediaType::kVideo, "MPEG-4", 186'000, 320, 240, 0},
               {2, MediaType::kAudio, "WMA", 64'000, 0, 0, 44'100}};
  return h;
}

/// Encode `seconds` of lecture into units (shared fixture).
std::vector<EncodedUnit> make_units(std::int64_t seconds) {
  const auto profile = *find_profile("Video 250k DSL/cable");
  auto v = make_video_codec(profile.video_codec);
  v->configure(profile.video_config());
  auto a = make_audio_codec(profile.audio_codec);
  a->configure(profile.audio_config());
  std::vector<EncodedUnit> units;
  LectureVideoSource vs(sec(seconds), profile.fps, 320, 240, 3);
  VideoFrame f;
  std::uint64_t i = 0;
  while (vs.next(f)) {
    auto u = v->encode(f, i++);
    u.stream_id = 1;
    units.push_back(u);
  }
  LectureAudioSource as(sec(seconds), 44'100);
  AudioBlock b;
  while (as.next(b)) {
    auto u = a->encode(b);
    u.stream_id = 2;
    units.push_back(u);
  }
  return units;
}

asf::File make_file(std::int64_t seconds) {
  asf::Muxer mux(header_for(seconds));
  for (const auto& u : make_units(seconds)) mux.add_unit(u);
  return mux.finalize();
}

void BM_Mux(benchmark::State& state) {
  const auto seconds = state.range(0);
  const auto units = make_units(seconds);
  for (auto _ : state) {
    asf::Muxer mux(header_for(seconds));
    for (const auto& u : units) mux.add_unit(u);
    auto f = mux.finalize();
    benchmark::DoNotOptimize(f.packets.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(units.size()));
}
BENCHMARK(BM_Mux)->Arg(10)->Arg(60)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Demux(benchmark::State& state) {
  const auto file = make_file(state.range(0));
  for (auto _ : state) {
    asf::Demuxer d(file.header);
    std::size_t n = 0;
    for (const auto& p : file.packets) {
      d.feed(p);
      while (d.next_unit()) ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(file.packets.size()));
}
BENCHMARK(BM_Demux)->Arg(10)->Arg(60)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_SerializeParse(benchmark::State& state) {
  const auto file = make_file(state.range(0));
  for (auto _ : state) {
    auto bytes = asf::serialize(file);
    auto g = asf::parse(bytes);
    benchmark::DoNotOptimize(g.packets.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(file.wire_size()));
}
BENCHMARK(BM_SerializeParse)->Arg(10)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_BuildIndex(benchmark::State& state) {
  auto file = make_file(state.range(0));
  for (auto _ : state) {
    asf::build_index(file, sec(5));
    benchmark::DoNotOptimize(file.index.size());
  }
}
BENCHMARK(BM_BuildIndex)->Arg(60)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Seek(benchmark::State& state) {
  const auto file = make_file(300);
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(asf::seek_packet(file, secf(t % 300)));
    t += 7;
  }
}
BENCHMARK(BM_Seek);

void BM_DrmKeystream(benchmark::State& state) {
  DrmSystem drm;
  const auto key = drm.create_key("bench");
  auto data = asf::pattern_bytes(static_cast<std::size_t>(state.range(0)), 1);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    drm.apply_keystream(key, nonce++, data);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DrmKeystream)->Arg(1400)->Arg(65536)->Arg(1 << 20);

void BM_EncodeVideoMinute(benchmark::State& state) {
  const auto profile = *find_profile("Video 250k DSL/cable");
  for (auto _ : state) {
    auto codec = make_video_codec(profile.video_codec);
    codec->configure(profile.video_config());
    LectureVideoSource vs(sec(60), profile.fps, 320, 240, 3);
    VideoFrame f;
    std::uint64_t i = 0;
    std::uint64_t bytes = 0;
    while (vs.next(f)) bytes += codec->encode(f, i++).bytes;
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * 900);  // frames
}
BENCHMARK(BM_EncodeVideoMinute)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ::lod::bench::emit_json("bench_p3_asf", "benchmarks_run",
                        static_cast<double>(ran));
  return ran > 0 ? 0 : 1;
}
