// P1 — Petri net engine throughput.
//
// Scaling of the kernel (enabling/firing), the timed playout engine, and
// reachability analysis with net size. Nets are meets-chains and parallel
// fans shaped like compiled presentations.

#include <benchmark/benchmark.h>

#include "lod/core/analysis.hpp"
#include "lod/core/ocpn.hpp"

#include "bench_json.hpp"

using namespace lod::core;
using lod::net::sec;

namespace {

TemporalSpec chain_spec(int n) {
  TemporalSpec s = TemporalSpec::object("o0", 0, sec(1));
  for (int i = 1; i < n; ++i) {
    s = TemporalSpec::relate(Relation::kMeets, std::move(s),
                             TemporalSpec::object("o" + std::to_string(i), 0,
                                                  sec(1)));
  }
  return s;
}

TemporalSpec fan_spec(int n) {
  // A balanced tree of `starts` relations: everything parallel.
  if (n <= 1) return TemporalSpec::object("f", 0, sec(1));
  std::vector<TemporalSpec> layer;
  for (int i = 0; i < n; ++i) {
    layer.push_back(TemporalSpec::object("f" + std::to_string(i), 0, sec(1)));
  }
  while (layer.size() > 1) {
    std::vector<TemporalSpec> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(TemporalSpec::relate(Relation::kStarts,
                                          std::move(layer[i]),
                                          std::move(layer[i + 1])));
    }
    if (layer.size() % 2 == 1) next.push_back(std::move(layer.back()));
    layer = std::move(next);
  }
  return std::move(layer[0]);
}

void BM_KernelFireCycle(benchmark::State& state) {
  // A marked-graph ring: fire transitions round-robin.
  const int n = static_cast<int>(state.range(0));
  PetriNet net;
  std::vector<PlaceId> places;
  std::vector<TransitionId> trans;
  for (int i = 0; i < n; ++i) {
    places.push_back(net.add_place("p" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    const TransitionId t = net.add_transition("t" + std::to_string(i));
    net.add_input(places[static_cast<std::size_t>(i)], t);
    net.add_output(t, places[static_cast<std::size_t>((i + 1) % n)]);
    trans.push_back(t);
  }
  Marking m = net.empty_marking();
  m[places[0]] = 1;
  std::size_t cursor = 0;
  for (auto _ : state) {
    net.fire_in_place(trans[cursor], m);
    cursor = (cursor + 1) % trans.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KernelFireCycle)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CompileOcpn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto spec = chain_spec(n);
  for (auto _ : state) {
    auto compiled = build_ocpn(spec);
    benchmark::DoNotOptimize(compiled.net.place_count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CompileOcpn)->Arg(10)->Arg(100)->Arg(1000);

void BM_PlayoutChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto compiled = build_ocpn(chain_spec(n));
  const Marking m0 = compiled.initial_marking();
  for (auto _ : state) {
    auto trace = play(compiled.net, m0);
    benchmark::DoNotOptimize(trace.makespan);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlayoutChain)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PlayoutFan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto compiled = build_ocpn(fan_spec(n));
  const Marking m0 = compiled.initial_marking();
  for (auto _ : state) {
    auto trace = play(compiled.net, m0);
    benchmark::DoNotOptimize(trace.makespan);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PlayoutFan)->Arg(16)->Arg(128)->Arg(1024);

void BM_Reachability(benchmark::State& state) {
  // Exploration of a parallel fan's interleavings, capped.
  const int n = static_cast<int>(state.range(0));
  const auto compiled = build_ocpn(fan_spec(n));
  const Marking m0 = compiled.initial_marking();
  for (auto _ : state) {
    auto res = explore(compiled.net, m0, 20'000);
    benchmark::DoNotOptimize(res.markings.size());
  }
}
BENCHMARK(BM_Reachability)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ::lod::bench::emit_json("bench_p1_petri_engine", "benchmarks_run",
                        static_cast<double>(ran));
  return ran > 0 ? 0 : 1;
}
