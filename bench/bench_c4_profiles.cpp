// Claim C4 (§2.1/§2.5) — bandwidth profiles: "Windows Media Codecs ...
// compress audio and/or video media ... to fit on a network's available
// bandwidth"; "the more high bit rate means the content will be encoded to a
// more high-resolution content."
//
// Sweep: every profile is streamed over every link class; we report startup
// delay, stalls and loss. The shape: a profile plays cleanly iff its rate
// fits the link; richer profiles raise resolution (printed) and demand more.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

struct Cell {
  bool finished;
  std::size_t stalls;
  std::uint64_t lost;
  double startup_s;
};

static Cell run(const std::string& profile, std::int64_t link_bps,
                std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, seed);
  const net::HostId server = network.add_host("server");
  const net::HostId pc = network.add_host("pc");
  net::LinkConfig link;
  link.bandwidth_bps = link_bps;
  link.latency = net::msec(link_bps < 100'000 ? 120 : 15);  // modem RTTs hurt
  network.add_link(server, pc, link);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(60);
  wmps.register_video("lec.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{2, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = profile;
  form.publish_name = "lec";
  if (!wmps.publish(form).ok) return {false, 0, 0, -1};

  streaming::PlayerConfig cfg;
  cfg.model = streaming::SyncModel::kOcpn;  // pure best-effort transport
  cfg.web_server = server;
  streaming::Player player(network, pc, cfg);
  player.open_and_play(server, "lec");
  sim.run_until(net::SimTime{net::sec(600).us});
  return Cell{player.finished(), player.stalls().size(), player.units_lost(),
              player.startup_delay().seconds()};
}

int main() {
  std::printf("=== C4: bandwidth profiles vs link classes ===\n\n");

  std::printf("profile ladder (richer rate -> higher resolution):\n");
  for (const auto& p : media::standard_profiles()) {
    std::printf("  %-24s %8.0f kb/s  %ux%u @ %.1f fps (%s/%s)\n",
                p.name.c_str(), p.total_bps / 1000.0, p.width, p.height, p.fps,
                p.video_codec.c_str(), p.audio_codec.c_str());
  }

  struct Link {
    const char* name;
    std::int64_t bps;
  };
  const Link links[] = {{"28.8k modem", 28'800},
                        {"56k modem", 56'000},
                        {"dual ISDN", 128'000},
                        {"DSL 384k", 384'000},
                        {"cable 1M", 1'000'000},
                        {"LAN 10M", 10'000'000}};

  std::printf("\n%-24s", "profile \\ link");
  for (const auto& l : links) std::printf(" %12s", l.name);
  std::printf("\n");

  bool shape_ok = true;
  for (const auto& p : media::standard_profiles()) {
    std::printf("%-24s", p.name.c_str());
    for (const auto& l : links) {
      const Cell c = run(p.name, l.bps, 7);
      // "Comfortably fits": 30% headroom covers container framing (~5%),
      // UDP/IP, and VBR keyframe spikes. Thinner margins play, but with
      // occasional rebuffering — exactly like the real modem-era marginal
      // configurations.
      const bool fits = p.total_bps * 130 / 100 <= l.bps;
      char buf[32];
      if (!c.finished) {
        std::snprintf(buf, sizeof buf, "dnf");
      } else if (c.stalls == 0 && c.lost < 5) {
        std::snprintf(buf, sizeof buf, "ok %.1fs", c.startup_s);
      } else {
        std::snprintf(buf, sizeof buf, "%zust/%llul", c.stalls,
                      static_cast<unsigned long long>(c.lost));
      }
      std::printf(" %12s", buf);
      // Shape: profiles that fit (with headroom) must finish with at most
      // a few rebuffers and negligible loss; VBR keyframe spikes on a
      // barely-fitting link legitimately cost an occasional rebuffer.
      if (fits && !(c.finished && c.stalls <= 5 && c.lost < 100)) {
        shape_ok = false;
        std::fprintf(stderr, "shape violation: %s on %s (fin=%d st=%zu l=%llu)\n",
                     p.name.c_str(), l.name, c.finished ? 1 : 0, c.stalls,
                     static_cast<unsigned long long>(c.lost));
      }
    }
    std::printf("\n");
  }
  std::printf("\nbest_profile_for() picks per link:\n");
  for (const auto& l : links) {
    std::printf("  %-12s -> %s\n", l.name,
                media::best_profile_for(l.bps).name.c_str());
  }
  std::printf("\nshape check (fitting profiles play cleanly): %s\n",
              shape_ok ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_c4_profiles", "shape_holds",
                        shape_ok ? 1.0 : 0.0);
  return shape_ok ? 0 : 1;
}
