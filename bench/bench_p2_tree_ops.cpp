// P2 — content tree operation latency at scale.
//
// attach / insert / delete / level accounting on trees from 100 to 1M nodes.

#include <benchmark/benchmark.h>

#include "lod/contenttree/content_tree.hpp"
#include "lod/net/rng.hpp"

#include "bench_json.hpp"

using namespace lod::contenttree;
using lod::net::Rng;
using lod::net::sec;

namespace {

/// A random tree with n nodes, bounded depth.
ContentTree random_tree(int n, std::uint64_t seed) {
  Rng rng(seed);
  ContentTree t;
  std::vector<NodeId> nodes;
  nodes.push_back(t.add({"n0", sec(1), ""}, 0));
  for (int i = 1; i < n; ++i) {
    const NodeId parent = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    nodes.push_back(
        t.attach_child(parent, {"n" + std::to_string(i), sec(1), ""}));
  }
  return t;
}

void BM_Attach(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ContentTree t = random_tree(n, 1);
  const NodeId root = t.root();
  int i = 0;
  for (auto _ : state) {
    t.attach_child(root, {"x" + std::to_string(i++), sec(1), ""});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Attach)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_InsertAbove(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ContentTree t = random_tree(n, 2);
  const auto seq = t.sequence(t.highest_level());
  std::size_t cursor = 1;  // skip root
  int i = 0;
  for (auto _ : state) {
    t.insert_above(seq[cursor], {"i" + std::to_string(i++), sec(1), ""});
    cursor = 1 + (cursor % (seq.size() - 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertAbove)->Arg(100)->Arg(10'000)->Arg(100'000);

void BM_AttachDeleteCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ContentTree t = random_tree(n, 3);
  const NodeId root = t.root();
  for (auto _ : state) {
    const NodeId x = t.attach_child(root, {"tmp", sec(1), ""});
    t.remove(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AttachDeleteCycle)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_LevelValue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ContentTree t = random_tree(n, 4);
  const int lvl = std::max(1, t.highest_level() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.level_value(lvl));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LevelValue)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_PresentationTime(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ContentTree t = random_tree(n, 5);
  const int lvl = t.highest_level();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.presentation_time(lvl));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PresentationTime)->Arg(100)->Arg(10'000)->Arg(100'000);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ContentTree t = random_tree(n, 6);
  for (auto _ : state) {
    auto bytes = t.serialize();
    auto u = ContentTree::deserialize(bytes);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SerializeRoundTrip)->Arg(100)->Arg(10'000);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ::lod::bench::emit_json("bench_p2_tree_ops", "benchmarks_run",
                        static_cast<double>(ran));
  return ran > 0 ? 0 : 1;
}
