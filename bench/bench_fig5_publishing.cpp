// Fig. 5 — "A web publishing manager": (a) fill the form, (b) replay.
//
// The paper's pipeline, measured: a 30-minute MPEG-4 lecture + a 24-slide
// directory go into the form; the manager generates temporal script
// commands, encodes, muxes one ASF, and publishes it. A player then replays
// it and we verify every slide flip lands on the generated schedule.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

int main() {
  std::printf("=== Fig. 5: the web publishing manager ===\n\n");

  net::Simulator sim;
  net::Network network(sim, 3);
  const net::HostId server = network.add_host("wmps");
  const net::HostId viewer = network.add_host("viewer");
  net::LinkConfig lan;
  network.add_link(server, viewer, lan);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(1800);  // a 30-minute lecture
  video.annotation_count = 12;
  wmps.register_video("d:/lectures/dcsys-week3.mp4", video);
  wmps.register_slides("dcsys-week3-slides", app::SlideAsset{24, 5});

  // (a) fill the path in the form for publishing.
  app::PublishForm form;
  form.video_path = "d:/lectures/dcsys-week3.mp4";
  form.slide_dir = "dcsys-week3-slides";
  form.profile = "Video 250k DSL/cable";
  form.title = "Distributed Computing Systems, week 3";
  form.author = "L. Y. Deng";
  form.publish_name = "lod/dcsys-week3";
  const auto res = wmps.publish(form);
  std::printf("(a) publish '%s'\n", form.publish_name.c_str());
  std::printf("    ok=%s  packets=%zu  script-commands=%zu  size=%.2f MB\n",
              res.ok ? "yes" : "no", res.packets, res.script_commands,
              res.wire_bytes / 1048576.0);
  if (!res.ok) return 1;

  // (b) replay the representation.
  streaming::PlayerConfig cfg;
  cfg.web_server = server;
  streaming::Player player(network, viewer, cfg);
  player.open_and_play(server, res.url);
  sim.run();

  const auto& schedule = *wmps.slide_schedule(res.url);
  std::printf("\n(b) replay: finished=%s  rendered=%llu units  stalls=%zu\n",
              player.finished() ? "yes" : "no",
              static_cast<unsigned long long>(player.units_rendered()),
              player.stalls().size());

  // Slide synchronization table (first 8 + worst case).
  const auto& r = player.rendered();
  const std::int64_t offset = r.front().true_time.us - r.front().pts.us;
  std::printf("\n    %-8s %12s %12s %10s\n", "slide", "scheduled", "shown",
              "error");
  double worst_ms = 0;
  for (std::size_t i = 0; i < player.slides().size(); ++i) {
    const auto& s = player.slides()[i];
    const double err_ms =
        (s.shown_true.us - offset - schedule[i].us) / 1000.0;
    worst_ms = std::max(worst_ms, std::abs(err_ms));
    if (i < 8) {
      std::printf("    %-8zu %11.2fs %11.2fs %8.1fms\n", i,
                  schedule[i].seconds(),
                  (s.shown_true.us - offset) / 1e6, err_ms);
    }
  }
  std::printf("    ... (%zu slides total), worst sync error %.1f ms\n",
              player.slides().size(), worst_ms);
  std::printf("\nannotations surfaced during replay: %zu of %zu\n",
              player.annotations().size(),
              wmps.published_annotations(res.url)->size());

  const bool ok = player.finished() &&
                  player.slides().size() == schedule.size() &&
                  worst_ms < 200.0;
  std::printf("\nFig. 5 reproduced: %s\n", ok ? "yes" : "NO");
    ::lod::bench::emit_json("bench_fig5_publishing", "worst_slide_sync_ms", worst_ms);
  return ok ? 0 : 1;
}
