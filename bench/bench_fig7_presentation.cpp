// Fig. 7 — "An example of Presentations": live video of the teacher with
// synchronized slides and annotations, on the student's screen.
//
// We replay a published lecture over a realistic access link (with jitter
// and a little loss) and measure what Fig. 7 shows qualitatively: the video
// keeps playing, each slide appears beside the right part of the talk, and
// annotations surface at their recorded instants. The table reports the
// intra-presentation synchronization quality (video <-> slide skew).

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

int main() {
  std::printf("=== Fig. 7: an example presentation, replayed ===\n\n");

  net::Simulator sim;
  net::Network network(sim, 11);
  const net::HostId server = network.add_host("wmps");
  const net::HostId home = network.add_host("student-home");
  net::LinkConfig dsl;  // home DSL: 1.5 Mb/s down, 15 ms, jittery, lossy
  dsl.bandwidth_bps = 1'500'000;
  dsl.latency = net::msec(15);
  dsl.jitter = net::msec(3);
  dsl.loss_rate = 0.002;
  network.add_link(server, home, dsl);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(600);
  video.annotation_count = 8;
  wmps.register_video("talk.mp4", video);
  wmps.register_slides("talk-slides", app::SlideAsset{12, 9});
  app::PublishForm form;
  form.video_path = "talk.mp4";
  form.slide_dir = "talk-slides";
  form.profile = "Video 250k DSL/cable";
  form.title = "Example presentation";
  form.publish_name = "talk";
  const auto res = wmps.publish(form);
  if (!res.ok) return 1;

  streaming::PlayerConfig cfg;
  cfg.web_server = server;
  streaming::Player player(network, home, cfg);
  player.open_and_play(server, res.url);
  sim.run();

  std::printf("playback: finished=%s  startup=%s  stalls=%zu  lost=%llu\n",
              player.finished() ? "yes" : "no",
              net::to_string(player.startup_delay()).c_str(),
              player.stalls().size(),
              static_cast<unsigned long long>(player.units_lost()));

  // Slide sync in two parts, as a browser of the era experienced it:
  //  - dispatch error: how far from its scheduled media time the SLIDE
  //    script command fired (the Petri-net/script machinery's accuracy);
  //  - fetch latency: how long the slide image took to download over the
  //    same DSL link the video shares (a transport cost, not a sync error).
  const auto& r = player.rendered();
  const std::int64_t offset = r.front().true_time.us - r.front().pts.us;
  double worst = 0, total = 0, worst_fetch = 0;
  for (const auto& s : player.slides()) {
    const std::int64_t dispatched = s.shown_true.us - s.fetch_latency.us;
    const double err =
        std::abs(static_cast<double>(dispatched - offset - s.pts.us)) / 1000.0;
    worst = std::max(worst, err);
    total += err;
    worst_fetch = std::max(worst_fetch, s.fetch_latency.millis());
  }
  std::printf("slides: %zu/12 shown\n", player.slides().size());
  std::printf("  script dispatch error: mean %.1f ms, worst %.1f ms\n",
              player.slides().empty() ? 0.0 : total / player.slides().size(),
              worst);
  std::printf("  slide image fetch    : worst %.1f ms (40-90 KB over DSL,\n"
              "    shared with the 250 kb/s stream — the paper-era browser\n"
              "    fetched at flip time)\n",
              worst_fetch);
  std::printf("annotations: %zu/8 surfaced, in order: %s\n",
              player.annotations().size(), [&] {
                for (std::size_t i = 1; i < player.annotations().size(); ++i) {
                  if (player.annotations()[i].pts <
                      player.annotations()[i - 1].pts) {
                    return "no";
                  }
                }
                return "yes";
              }());

  const bool ok = player.finished() && player.slides().size() == 12 &&
                  worst < 250.0 && worst_fetch < 2000.0 &&
                  player.annotations().size() == 8;
  std::printf("\nFig. 7 reproduced (video + synced slides + annotations): %s\n",
              ok ? "yes" : "NO");
    ::lod::bench::emit_json("bench_fig7_presentation", "worst_script_dispatch_ms",
                        worst);
  return ok ? 0 : 1;
}
