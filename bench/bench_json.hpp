#pragma once

// Machine-readable bench summary. Every bench binary prints, as its final
// stdout line, exactly one JSON object
//
//   {"bench": "<binary name>", "metric": "<headline metric>", "value": N}
//
// so CI and sweep scripts can scrape a headline number without parsing the
// human-readable tables above it. Pass-fail shape benches report their
// verdict as 1/0 under a "*_holds" or "mismatches" metric.

// A bench may carry extra numeric fields after the headline "value" (e.g.
// bench_c1's desync-recovery numbers); scrapers keyed on "value" are
// unaffected because the headline triple always comes first.

#include <cstdio>
#include <initializer_list>

namespace lod::bench {

/// One extra `"name": value` field appended to the JSON line.
struct Extra {
  const char* name;
  double value;
};

inline void emit_json(const char* bench, const char* metric, double value,
                      std::initializer_list<Extra> extra = {}) {
  std::printf("{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %g", bench,
              metric, value);
  for (const Extra& e : extra) std::printf(", \"%s\": %g", e.name, e.value);
  std::printf("}\n");
}

}  // namespace lod::bench
