#pragma once

// Machine-readable bench summary. Every bench binary prints, as its final
// stdout line, exactly one JSON object
//
//   {"bench": "<binary name>", "metric": "<headline metric>", "value": N}
//
// so CI and sweep scripts can scrape a headline number without parsing the
// human-readable tables above it. Pass-fail shape benches report their
// verdict as 1/0 under a "*_holds" or "mismatches" metric.

#include <cstdio>

namespace lod::bench {

inline void emit_json(const char* bench, const char* metric, double value) {
  std::printf("{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %g}\n", bench,
              metric, value);
}

}  // namespace lod::bench
