// Ablation A1 — the preroll (client buffer) design choice.
//
// §2.1's ASF carries a preroll ("how much content a player should buffer
// before starting to render"); DESIGN.md fixes it at 3 s. This bench sweeps
// it on a jittery, slightly lossy DSL link and shows the startup-delay /
// rebuffer trade-off that motivates the default.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/streaming/player.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

struct Row {
  double preroll_s;
  double startup_s;
  std::size_t stalls;
  double stalled_s;
};

static Row run(net::SimDuration preroll, std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, seed);
  const net::HostId server = network.add_host("server");
  const net::HostId pc = network.add_host("pc");
  net::LinkConfig dsl;
  dsl.bandwidth_bps = 384'000;  // tight for the 250k profile + overhead
  dsl.latency = net::msec(25);
  dsl.jitter = net::msec(8);
  dsl.loss_rate = 0.005;
  network.add_link(server, pc, dsl);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(120);
  wmps.register_video("lec.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{2, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  wmps.publish(form);

  streaming::PlayerConfig cfg;
  cfg.model = streaming::SyncModel::kOcpn;  // plain transport: buffer-bound
  cfg.web_server = server;
  cfg.preroll_override = preroll;
  streaming::Player player(network, pc, cfg);
  player.open_and_play(server, "lec");
  sim.run_until(net::SimTime{net::sec(600).us});

  // Everything this bench reports now comes out of the metrics registry the
  // player publishes into (lod.player.*{host}), not bespoke accessors.
  const obs::Snapshot snap = sim.obs().metrics().snapshot();
  const obs::Labels at_pc{{"host", std::to_string(pc)}};
  Row r;
  r.preroll_s = preroll.seconds();
  const auto* startup = snap.histogram("lod.player.startup_us", at_pc);
  r.startup_s =
      startup && startup->count ? static_cast<double>(startup->sum) / 1e6 : 0.0;
  r.stalls = static_cast<std::size_t>(snap.counter("lod.player.stalls", at_pc));
  const auto* stall = snap.histogram("lod.player.stall_us", at_pc);
  r.stalled_s = stall ? static_cast<double>(stall->sum) / 1e6 : 0.0;
  return r;
}

int main() {
  std::printf("=== A1: preroll sweep (250 kb/s on jittery 384 kb/s DSL) ===\n\n");
  std::printf("%10s %12s %9s %14s\n", "preroll", "startup", "stalls",
              "time stalled");
  // Averages over 3 seeds smooth the loss draws.
  double headline_startup_s = 0;  // at the 3 s default
  for (const std::int64_t ms : {250LL, 500LL, 1000LL, 2000LL, 3000LL, 5000LL,
                                8000LL}) {
    double startup = 0, stalled = 0;
    std::size_t stalls = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Row r = run(net::msec(ms), seed * 37);
      startup += r.startup_s;
      stalls += r.stalls;
      stalled += r.stalled_s;
    }
    if (ms == 3000) headline_startup_s = startup / 3;
    std::printf("%8.2fs %10.2fs %9.1f %12.2fs\n", ms / 1000.0, startup / 3,
                static_cast<double>(stalls) / 3, stalled / 3);
  }
  std::printf(
      "\nReading: short prerolls start fast but rebuffer under jitter and\n"
      "VBR spikes; past ~3s extra buffering only delays the start.\n");
  ::lod::bench::emit_json("bench_a1_preroll", "startup_s_at_3s_preroll",
                        headline_startup_s);
  return 0;
}
