// H1 — the hot-path contracts introduced by the perf overhaul.
//
// Three claims, each gated:
//
//  1. Pre-resolved metric handles: bumping a Counter through a handle
//     resolved once at construction is >= 5x faster than re-resolving the
//     (name, labels) identity through the string API on every increment.
//  2. Zero-copy payloads: relaying a message across H transport hops copies
//     its bytes ZERO additional times — Payload::stats().bytes_copied stays
//     flat as the hop count grows (bytes are copied once, at encode, never
//     per hop).
//  3. Timing-wheel scheduler: reported as raw schedule+dispatch throughput
//     (events/sec) so regressions show up in bench_results.json history.
//
// Exit is nonzero when gate 1 or 2 is violated.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "lod/net/network.hpp"
#include "lod/net/payload.hpp"
#include "lod/net/transport.hpp"
#include "lod/obs/metrics.hpp"

#include "bench_json.hpp"

using namespace lod;
using lod::net::msec;
using lod::net::usec;

namespace {

/// Min-of-reps wall time: the noise-robust statistic for a fixed workload.
template <typename Fn>
double min_seconds(Fn&& fn, int reps) {
  double best = std::numeric_limits<double>::max();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// --- 1. handle vs string metric increments ----------------------------------

struct MetricTimes {
  double handle_ns{0};
  double string_ns{0};
  double speedup() const { return string_ns > 0 ? string_ns / handle_ns : 0; }
};

MetricTimes bench_metric_ops() {
  constexpr int kOps = 1'000'000;
  constexpr int kReps = 7;

  obs::MetricsRegistry reg;
  const obs::Labels labels{{"host", "3"}, {"session", "17"}};
  const obs::Counter handle = reg.counter("lod.bench.hot_counter", labels);

  // Interleave the two paths so frequency drift hits both equally.
  double handle_s = std::numeric_limits<double>::max();
  double string_s = std::numeric_limits<double>::max();
  for (int round = 0; round < kReps; ++round) {
    handle_s = std::min(handle_s, min_seconds([&] {
                 for (int i = 0; i < kOps; ++i) handle.inc();
               }, 1));
    string_s = std::min(string_s, min_seconds([&] {
                 for (int i = 0; i < kOps; ++i) {
                   reg.counter("lod.bench.hot_counter", labels).inc();
                 }
               }, 1));
  }
  if (handle.value() == 0) std::abort();  // keep the loops observable

  MetricTimes t;
  t.handle_ns = handle_s / kOps * 1e9;
  t.string_ns = string_s / kOps * 1e9;
  return t;
}

// --- 2. bytes copied stays flat across relay hops ---------------------------

/// Relay kMessages of kMsgBytes across a chain of `hops` reliable links
/// (h0 -> h1 -> ... -> h<hops>); each intermediate forwards the received
/// Payload as-is. Returns Payload's bytes_copied delta for the whole run.
std::uint64_t relay_bytes_copied(int hops) {
  constexpr int kMessages = 64;
  constexpr std::size_t kMsgBytes = 4096;

  net::Simulator sim;
  net::Network netw(sim, 7);
  std::vector<net::HostId> hosts;
  for (int i = 0; i <= hops; ++i) {
    hosts.push_back(netw.add_host("h" + std::to_string(i)));
    if (i > 0) {
      net::LinkConfig cfg;
      cfg.bandwidth_bps = 100'000'000;
      cfg.latency = msec(1);
      netw.add_link(hosts[i - 1], hosts[i], cfg);
    }
  }

  constexpr net::Port kPort = 900;
  std::vector<std::unique_ptr<net::ReliableEndpoint>> eps;
  for (int i = 0; i <= hops; ++i) {
    eps.push_back(std::make_unique<net::ReliableEndpoint>(netw, hosts[i], kPort));
  }
  std::size_t delivered_bytes = 0;
  for (int i = 1; i <= hops; ++i) {
    if (i == hops) {
      eps[i]->on_receive(
          [&delivered_bytes](const net::ReliableEndpoint::Message& m) {
            delivered_bytes += m.payload.size();
          });
    } else {
      net::ReliableEndpoint* self = eps[i].get();
      const net::HostId next_host = hosts[i + 1];
      eps[i]->on_receive(
          [self, next_host](const net::ReliableEndpoint::Message& m) {
            self->send_to(next_host, kPort, m.payload);  // zero-copy forward
          });
    }
  }

  const std::uint64_t copied_before = net::Payload::stats().bytes_copied;
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::byte> msg(kMsgBytes, std::byte{static_cast<unsigned char>(i)});
    eps[0]->send_to(hosts[1], kPort, net::Payload{std::move(msg)});
  }
  sim.run();
  const std::uint64_t copied = net::Payload::stats().bytes_copied - copied_before;

  if (delivered_bytes != kMessages * kMsgBytes) {
    std::printf("relay(%d hops): delivered %zu bytes, expected %zu\n", hops,
                delivered_bytes, kMessages * kMsgBytes);
    std::exit(1);
  }
  return copied;
}

// --- 3. scheduler throughput -------------------------------------------------

double scheduler_events_per_sec() {
  constexpr int kEvents = 200'000;
  constexpr int kReps = 5;
  const double s = min_seconds([&] {
    net::Simulator sim;
    std::uint64_t fired = 0;
    // A mix of near (wheel level 0-1) and far (upper levels / heap) delays.
    for (int i = 0; i < kEvents; ++i) {
      const std::int64_t delay = (i % 97) * 13 + (i % 11) * 70'000 +
                                 (i % 3 == 0 ? 5'000'000'000LL : 0);
      sim.schedule_after(usec(delay), [&fired] { ++fired; });
    }
    sim.run();
    if (fired != kEvents) std::abort();
  }, kReps);
  return kEvents / s;
}

}  // namespace

int main() {
  std::printf("=== H1: hot-path overhaul ===\n\n");

  const MetricTimes mt = bench_metric_ops();
  std::printf("metric increment       handle %7.1f ns/op   string %7.1f ns/op   "
              "speedup %.1fx\n",
              mt.handle_ns, mt.string_ns, mt.speedup());

  std::printf("\nrelay bytes copied (64 msgs x 4 KiB, per hop count):\n");
  std::uint64_t copied_1 = 0, copied_max = 0;
  for (int hops = 1; hops <= 4; ++hops) {
    const std::uint64_t c = relay_bytes_copied(hops);
    if (hops == 1) copied_1 = c;
    copied_max = std::max(copied_max, c);
    std::printf("  %d hop%s: %llu bytes copied\n", hops, hops == 1 ? " " : "s",
                static_cast<unsigned long long>(c));
  }

  const double evps = scheduler_events_per_sec();
  std::printf("\ntiming-wheel scheduler: %.2fM events/sec (schedule+dispatch)\n",
              evps / 1e6);

  const bool handle_ok = mt.speedup() >= 5.0;
  const bool copies_flat = copied_max == copied_1;
  std::printf("\ncontract (handle speedup >= 5x):          %s\n",
              handle_ok ? "holds" : "VIOLATED");
  std::printf("contract (bytes copied flat across hops): %s\n",
              copies_flat ? "holds" : "VIOLATED");

  ::lod::bench::emit_json("bench_h1_hotpath", "handle_speedup_x", mt.speedup());
  return handle_ok && copies_flat ? 0 : 1;
}
