// Claim C3 (§1) — floor control with multiple users.
//
// M students contend for the floor over the network while watching. We
// verify the Petri-net invariant (never two holders), measure FIFO fairness
// (grants follow arrival order, read off the floor_request/floor_grant trace
// events), and report the exact grant-wait latency from the
// lod.floor.grant_wait_us histogram as contention grows.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "lod/lod/classroom.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/obs/trace.hpp"

#include "bench_json.hpp"

using namespace lod;
namespace app = ::lod::lod;

struct Result {
  std::uint32_t users;
  bool exclusion_ok;
  bool fifo_ok;
  double mean_grant_wait_s;
  std::size_t grants;
};

static Result run(std::uint32_t users, std::uint64_t seed) {
  net::Simulator sim;
  net::Network network(sim, seed);
  const net::HostId teacher = network.add_host("teacher");
  std::vector<std::string> names;
  std::vector<net::HostId> hosts;
  net::LinkConfig lan;
  lan.latency = net::msec(2);
  for (std::uint32_t i = 0; i < users; ++i) {
    names.push_back("u" + std::to_string(i));
    hosts.push_back(network.add_host(names.back()));
    network.add_link(teacher, hosts.back(), lan);
  }
  app::FloorService service(network, teacher, 9000, names);
  // The floor service publishes into the simulator's hub; turn on tracing so
  // the request/grant order is recoverable after the fact.
  sim.obs().trace().set_enabled(true);

  std::vector<std::unique_ptr<app::FloorClient>> clients;
  for (std::uint32_t i = 0; i < users; ++i) {
    clients.push_back(std::make_unique<app::FloorClient>(
        network, hosts[i], 6000, names[i], teacher, 9000, nullptr));
    clients.back()->join();
  }
  sim.run();

  // Contention storm: every user requests at a random instant in [0, 2 s],
  // speaks, holds the floor ~1 s, releases. Verify exclusion throughout.
  net::Rng rng(seed * 17 + 3);
  struct Ask {
    std::uint32_t user;
    net::SimTime asked;
  };
  std::vector<Ask> asks;
  bool exclusion_ok = true;
  for (std::uint32_t i = 0; i < users; ++i) {
    const net::SimTime at{rng.uniform_int(0, net::sec(2).us)};
    sim.schedule_at(at, [&, i] {
      asks.push_back({i, sim.now()});
      clients[i]->request_floor();
    });
  }
  // A watchdog samples the invariant while the storm runs.
  std::function<void()> watchdog = [&] {
    const auto& fc = service.control();
    std::int64_t holders = 0;
    const auto w = fc.exclusion_invariant();
    for (std::size_t p = 0; p < fc.marking().size(); ++p) {
      holders += w[p] * fc.marking()[p];
    }
    exclusion_ok = exclusion_ok && holders == 1;
    if (sim.now().us < net::sec(60).us) {
      sim.schedule_after(net::msec(100), watchdog);
    }
  };
  sim.schedule_after(net::msec(50), watchdog);
  // Holders release after ~1 s: poll and release.
  std::function<void()> releaser = [&] {
    if (auto h = service.control().holder()) {
      for (std::uint32_t i = 0; i < users; ++i) {
        if (names[i] == *h) clients[i]->release_floor();
      }
    }
    if (sim.now().us < net::sec(60).us) {
      sim.schedule_after(net::sec(1), releaser);
    }
  };
  sim.schedule_after(net::sec(1), releaser);
  sim.run();

  // Fairness: grants must follow request-arrival order at the service. Both
  // orders come out of the trace (the detail field carries the user name).
  auto& sink = sim.obs().trace();
  std::vector<std::string> req_order, grant_order;
  for (const auto& e : sink.events(obs::EventType::kFloorRequest)) {
    req_order.push_back(e.detail);
  }
  for (const auto& e : sink.events(obs::EventType::kFloorGrant)) {
    grant_order.push_back(e.detail);
  }
  const bool fifo_ok =
      sink.dropped() == 0 && grant_order.size() == req_order.size() &&
      std::equal(grant_order.begin(), grant_order.end(), req_order.begin());

  // Grant latency: request arrival to grant, exact, from the wait histogram
  // the floor control observes into at every grant.
  const obs::Snapshot snap = sim.obs().metrics().snapshot();
  const std::size_t grants =
      static_cast<std::size_t>(snap.counter("lod.floor.grants"));
  const auto* wait = snap.histogram("lod.floor.grant_wait_us");
  const double mean_wait = wait ? wait->mean() / 1e6 : 0.0;

  return Result{users, exclusion_ok, fifo_ok, mean_wait, grants};
}

int main() {
  std::printf("=== C3: floor control with multiple users ===\n\n");
  std::printf("%-8s %10s %10s %14s %8s\n", "users", "exclusive", "FIFO",
              "mean wait", "grants");
  bool ok = true;
  for (const std::uint32_t m : {2u, 4u, 8u, 16u, 32u}) {
    const Result r = run(m, 100 + m);
    std::printf("%-8u %10s %10s %13.2fs %8zu\n", r.users,
                r.exclusion_ok ? "yes" : "NO", r.fifo_ok ? "yes" : "NO",
                r.mean_grant_wait_s, r.grants);
    ok = ok && r.exclusion_ok && r.fifo_ok && r.grants == m;
  }
  std::printf("\nmutual exclusion + FIFO fairness at every size: %s\n",
              ok ? "holds" : "VIOLATED");
    ::lod::bench::emit_json("bench_c3_floor_control", "shape_holds",
                        ok ? 1.0 : 0.0);
  return ok ? 0 : 1;
}
